//! The threaded TCP server: one session thread per connection,
//! server-side op batching, streamed range scans, and the robustness
//! envelope (session cap, idle reaper, overload shedding).
//!
//! # Batching
//!
//! A session does not serve requests one read() at a time. Each cycle
//! it blocks for the *first* complete frame, then drains every byte
//! the client has already pipelined (a non-blocking read loop) and
//! cuts the re-assembled frames into one batch of up to
//! [`ServerConfig::batch_cap`] requests. The batch's point operations
//! all execute under a **single epoch pin**: `crossbeam_epoch::pin()`
//! is re-entrant, so the per-operation pins inside the structures
//! collapse into cheap re-entries and the epoch-entry cost — the fee
//! the paper's reclamation assumption charges every operation — is
//! paid once per batch instead of once per op. Replies are written in
//! request order and flushed once per batch. That is why pipeline
//! depth translates into server-side throughput: depth-N clients
//! amortize both the syscalls and the epoch machinery N ways.
//!
//! # Scan streaming
//!
//! A [`Request::RangeScan`] maps onto the structure's windowed
//! [`ScanCursor`](conc_set::ScanCursor): the session drives
//! `next_window` and writes each validated window as its own
//! [`Response::ScanWindow`] frame, then [`Response::ScanDone`]. Memory
//! at the server is bounded by one window regardless of range size;
//! writers are never blocked (cursor validation retries only the dirty
//! window, with backoff); and the stream is interleaved *between* a
//! batch's point replies at its request's position, preserving
//! in-order replies. The batch pin is dropped before a scan starts —
//! each window pins internally, so a long stream never holds one epoch
//! open.
//!
//! # Robustness
//!
//! Three bounds keep a hostile or unlucky client population from
//! exhausting the server ([`NetStats`] counts each):
//!
//! * **Session cap** ([`ServerConfig::max_sessions`]): past the cap,
//!   new connections are *shed at accept time* — answered one
//!   [`Response::Busy`] frame, drained briefly so the refusal arrives
//!   as a clean FIN rather than an RST, and closed. No session thread
//!   is spawned; the drain helpers are themselves capped.
//! * **Idle reaper** ([`ServerConfig::idle_deadline`]): a session that
//!   completes no frame within the deadline is evicted. The clock only
//!   resets on *complete frames*, so a slow-loris client dribbling a
//!   byte per read-timeout poll cannot hold its thread.
//! * **Scan cap** ([`ServerConfig::max_scans`]): at most this many
//!   `RangeScan` streams run concurrently; excess scans (and any scan
//!   arriving while the server drains for shutdown) answer a single
//!   `Busy` frame while point ops keep flowing.
//!
//! Injected wire faults (`net.conn.drop`, `net.frame.torn`,
//! `net.scan.drop` — see the `faultpoint` crate) exercise exactly the
//! session exit paths the counters classify.
//!
//! # Lifecycle
//!
//! The accept loop polls a shutdown flag between non-blocking accepts;
//! sessions poll it on a 50 ms read timeout while idle, finish the
//! batch they are executing (in-flight batches drain, new scans answer
//! `Busy`), and exit. A client disconnect anywhere — between frames,
//! mid-frame, or mid-scan-stream — just ends that session: the cursor
//! and buffers drop with the stack, the active-session count
//! decrements, nothing wedges.

use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use conc_set::{ConcurrentOrderedSet, ScanOpts, ScanStep, StructureSpec};

use crate::codec::{
    write_frame, FrameAssembler, NetError, NetStats, Request, Response, MAX_SCAN_WINDOW,
};

/// Server construction knobs; [`ServerConfig::default`] reads the
/// `LLX_NET_*` environment via [`workloads::knobs`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`LLX_NET_ADDR`, default `127.0.0.1:0` — an
    /// OS-assigned loopback port; read the actual one back from
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Max requests per session batch (`LLX_NET_BATCH`, default 64).
    pub batch_cap: usize,
    /// Max live sessions before accept-time shedding
    /// (`LLX_NET_MAX_SESSIONS`, default 256).
    pub max_sessions: usize,
    /// Evict a session that completes no frame for this long
    /// (`LLX_NET_IDLE_MS`, default 10s; zero disables the reaper).
    pub idle_deadline: Duration,
    /// Max concurrent `RangeScan` streams before scans answer `Busy`
    /// (`LLX_NET_MAX_SCANS`, default 32). Zero refuses every stream —
    /// a fully degraded point-ops-only server.
    pub max_scans: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: workloads::knobs::net_addr(),
            batch_cap: workloads::knobs::net_batch(),
            max_sessions: workloads::knobs::net_max_sessions(),
            idle_deadline: workloads::knobs::net_idle_deadline(),
            max_scans: workloads::knobs::net_max_scans(),
        }
    }
}

/// The per-session slice of the config, shared by the accept loop.
#[derive(Clone)]
struct SessionCfg {
    batch_cap: usize,
    idle_deadline: Duration,
    max_scans: usize,
    max_sessions: usize,
}

/// Shared server state: the structures and the counters every session
/// updates.
struct Shared {
    /// The served structures, indexed by the protocol's `structure`
    /// id, in spec-list order.
    sets: Vec<Arc<dyn ConcurrentOrderedSet>>,
    /// Canonical spec strings, parallel to `sets`.
    names: Vec<String>,
    /// Set once by [`Server::shutdown`]; accept loop and sessions poll
    /// it.
    shutdown: AtomicBool,
    /// Live session threads.
    active_sessions: AtomicUsize,
    /// Live `RangeScan` streams (bounded by `max_scans`).
    active_scans: AtomicUsize,
    /// Live shed-drain helper threads (bounded by [`SHED_DRAIN_CAP`]).
    shed_drains: AtomicUsize,
    /// Batches executed across all sessions.
    batches: AtomicU64,
    /// Requests executed across all sessions (batched_ops / batches =
    /// achieved amortization).
    batched_ops: AtomicU64,
    /// Sessions ever accepted (spawned, not shed).
    total_sessions: AtomicU64,
    /// Connections answered `Busy` and closed at accept time.
    shed_sessions: AtomicU64,
    /// Sessions evicted by the idle-deadline reaper.
    idle_evictions: AtomicU64,
    /// Sessions that ended in an error (I/O, protocol, injected).
    session_errors: AtomicU64,
    /// Sessions that ended with a clean EOF at a frame boundary.
    clean_drains: AtomicU64,
    /// `RangeScan` requests answered `Busy`.
    scans_rejected: AtomicU64,
}

impl Shared {
    fn stats(&self) -> NetStats {
        NetStats {
            // ord: control-plane gauge/counter reads for reporting, not protocol steps
            active_sessions: self.active_sessions.load(Ordering::SeqCst) as u64,
            total_sessions: self.total_sessions.load(Ordering::SeqCst), // ord: stats counter
            shed_sessions: self.shed_sessions.load(Ordering::SeqCst),   // ord: stats counter
            idle_evictions: self.idle_evictions.load(Ordering::SeqCst), // ord: stats counter
            session_errors: self.session_errors.load(Ordering::SeqCst), // ord: stats counter
            clean_drains: self.clean_drains.load(Ordering::SeqCst),     // ord: stats counter
            scans_rejected: self.scans_rejected.load(Ordering::SeqCst), // ord: stats counter
            batches: self.batches.load(Ordering::SeqCst),               // ord: stats counter
            batched_ops: self.batched_ops.load(Ordering::SeqCst),       // ord: stats counter
        }
    }
}

/// How a session ended, for the exit-path counters.
enum SessionEnd {
    /// Clean EOF at a frame boundary (normal client disconnect).
    Clean,
    /// The server is shutting down; the session drained and left.
    Shutdown,
    /// Evicted by the idle-deadline reaper.
    IdleEvicted,
    /// EOF mid-frame: the client died with a partial frame buffered.
    TornEof,
}

/// A running network service over a set of structure specs. Dropping
/// the handle shuts the server down.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("structures", &self.shared.names)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Build one structure per spec and serve them all; returns once
    /// the listener is bound and accepting.
    pub fn spawn(specs: &[StructureSpec], config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            sets: specs.iter().map(|s| Arc::from(s.build())).collect(),
            names: specs.iter().map(|s| s.to_string()).collect(),
            shutdown: AtomicBool::new(false),
            active_sessions: AtomicUsize::new(0),
            active_scans: AtomicUsize::new(0),
            shed_drains: AtomicUsize::new(0),
            batches: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
            total_sessions: AtomicU64::new(0),
            shed_sessions: AtomicU64::new(0),
            idle_evictions: AtomicU64::new(0),
            session_errors: AtomicU64::new(0),
            clean_drains: AtomicU64::new(0),
            scans_rejected: AtomicU64::new(0),
        });
        let cfg = SessionCfg {
            batch_cap: config.batch_cap.max(1),
            idle_deadline: config.idle_deadline,
            max_scans: config.max_scans,
            max_sessions: config.max_sessions.max(1),
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("netsvc-accept".into())
                .spawn(move || accept_loop(listener, shared, cfg))?
        };
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Canonical spec strings, in `structure`-id order.
    pub fn structure_names(&self) -> &[String] {
        &self.shared.names
    }

    /// Direct handle to a served structure (for in-process conservation
    /// checks at quiescence).
    pub fn structure(&self, id: u16) -> Option<Arc<dyn ConcurrentOrderedSet>> {
        self.shared.sets.get(id as usize).cloned()
    }

    /// Currently live session threads.
    pub fn active_sessions(&self) -> usize {
        // ord: control-plane gauge polled at ms granularity, not a protocol step
        self.shared.active_sessions.load(Ordering::SeqCst)
    }

    /// `(batches, requests)` executed so far across all sessions; the
    /// ratio is the achieved per-batch amortization.
    pub fn batch_stats(&self) -> (u64, u64) {
        (
            self.shared.batches.load(Ordering::SeqCst), // ord: stats counter, off hot path
            self.shared.batched_ops.load(Ordering::SeqCst), // ord: stats counter, off hot path
        )
    }

    /// The server-global counter snapshot (the in-process view of what
    /// a [`Request::Stats`] answers over the wire).
    pub fn stats(&self) -> NetStats {
        self.shared.stats()
    }

    /// Stop accepting, wake idle sessions, and wait (bounded) for all
    /// session threads to exit. In-flight batches drain; new scans
    /// answer `Busy` while the flag is up.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // ord: lifecycle flag polled at ms granularity, not a protocol step
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Sessions notice the flag within one 50 ms read timeout; give
        // stragglers (e.g. one mid-scan-stream) a grace period rather
        // than blocking shutdown on a hostile client.
        let deadline = Instant::now() + Duration::from_secs(5);
        // ord: control-plane gauge (see active_sessions)
        while self.shared.active_sessions.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accept connections until shutdown, one session thread each; over
/// the session cap, shed with one `Busy` frame instead of spawning.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, cfg: SessionCfg) {
    // ord: lifecycle flag, polled between accepts
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // ord: session gauge read; the cap is advisory backpressure, not mutual exclusion
                if shared.active_sessions.load(Ordering::SeqCst) >= cfg.max_sessions {
                    shared.shed_sessions.fetch_add(1, Ordering::SeqCst); // ord: stats counter
                    shed(stream, &shared);
                    continue;
                }
                let session_shared = Arc::clone(&shared);
                let session_cfg = cfg.clone();
                // ord: session gauge, once per connection
                shared.active_sessions.fetch_add(1, Ordering::SeqCst);
                shared.total_sessions.fetch_add(1, Ordering::SeqCst); // ord: stats counter
                let spawned =
                    thread::Builder::new()
                        .name("netsvc-session".into())
                        .spawn(move || {
                            match session(stream, &session_shared, &session_cfg) {
                                Ok(SessionEnd::Clean) => {
                                    // ord: stats counter, once per session
                                    session_shared.clean_drains.fetch_add(1, Ordering::SeqCst);
                                }
                                Ok(SessionEnd::Shutdown) => {}
                                Ok(SessionEnd::IdleEvicted) => {
                                    // ord: stats counter, once per session
                                    session_shared.idle_evictions.fetch_add(1, Ordering::SeqCst);
                                }
                                Ok(SessionEnd::TornEof) | Err(_) => {
                                    // ord: stats counter, once per session
                                    session_shared.session_errors.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                            session_shared
                                .active_sessions
                                // ord: session gauge, once per connection
                                .fetch_sub(1, Ordering::SeqCst);
                        });
                if spawned.is_err() {
                    // Spawn failure drops the connection; the count
                    // must not leak a phantom session.
                    // ord: session gauge, once per connection
                    shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Shed-drain helpers alive at once; past this, shed connections get a
/// best-effort `Busy` and an abrupt close.
const SHED_DRAIN_CAP: usize = 32;

/// How long a shed drain waits for the client's FIN before giving up.
const SHED_DRAIN_DEADLINE: Duration = Duration::from_millis(250);

/// Shed one over-cap connection: answer `Busy`, half-close, then read
/// the socket dry until the client hangs up (bounded by
/// [`SHED_DRAIN_DEADLINE`]). The drain matters: the client has usually
/// already pipelined a request, and closing with those bytes unread
/// makes the kernel send an RST that can destroy the in-flight `Busy`
/// frame — turning a definite "not executed" refusal into an ambiguous
/// connection error the client must treat as `Unknown`. Draining on a
/// short-lived helper thread keeps the accept loop unblocked; the
/// [`SHED_DRAIN_CAP`] bound keeps a connection flood from turning the
/// helpers back into thread-per-connection.
fn shed(stream: TcpStream, shared: &Arc<Shared>) {
    let mut payload = Vec::new();
    Response::Busy.encode(&mut payload);
    let took_slot = shared
        .shed_drains
        // ord: bounded-budget gauge; fetch_update supplies the claim atomicity
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < SHED_DRAIN_CAP).then_some(n + 1)
        })
        .is_ok();
    if !took_slot {
        // Flooded past the drain budget: best effort only.
        let _ = write_frame(&mut (&stream), &payload);
        return;
    }
    let drain_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("netsvc-shed".into())
        .spawn(move || {
            let _ = write_frame(&mut (&stream), &payload);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .ok();
            let deadline = Instant::now() + SHED_DRAIN_DEADLINE;
            let mut sink = [0u8; 256];
            while Instant::now() < deadline {
                match (&stream).read(&mut sink) {
                    Ok(0) => break, // client's FIN: handshake complete
                    Ok(_) => {}     // discard whatever it pipelined
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
            // ord: bounded-budget gauge, release on drain end
            drain_shared.shed_drains.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        // ord: bounded-budget gauge, release on spawn failure
        shared.shed_drains.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII slot in the bounded concurrent-scan budget.
struct ScanSlot<'a>(&'a Shared);

impl<'a> ScanSlot<'a> {
    /// Claim a slot unless the budget is exhausted.
    fn acquire(shared: &'a Shared, max_scans: usize) -> Option<ScanSlot<'a>> {
        shared
            .active_scans
            // ord: bounded-budget gauge; fetch_update is the atomicity, SC matches the file's discipline
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < max_scans).then_some(n + 1)
            })
            .ok()
            .map(|_| ScanSlot(shared))
    }
}

impl Drop for ScanSlot<'_> {
    fn drop(&mut self) {
        // ord: bounded-budget gauge, release on scan end
        self.0.active_scans.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One connection's lifetime: batch-read, batch-execute, reply
/// in order, repeat until disconnect, protocol violation, idle
/// eviction, or shutdown.
fn session(stream: TcpStream, shared: &Shared, cfg: &SessionCfg) -> Result<SessionEnd, NetError> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = stream;
    let mut asm = FrameAssembler::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut batch: Vec<Vec<u8>> = Vec::with_capacity(cfg.batch_cap);
    // The reaper clock: arms at accept, re-arms only on a *complete*
    // frame. Byte dribble does not touch it.
    let mut last_frame = Instant::now();
    loop {
        batch.clear();
        // Phase 1: block (on a shutdown-polling timeout) until at
        // least one complete frame is buffered.
        loop {
            match asm.next_frame() {
                Ok(Some(payload)) => {
                    batch.push(payload);
                    last_frame = Instant::now();
                    break;
                }
                Ok(None) => {}
                Err(violation) => {
                    // A framing lie leaves no recoverable boundary:
                    // report once and drop the connection.
                    reply(&mut writer, &Response::Error(violation.to_string()))?;
                    writer.flush()?;
                    return Err(violation);
                }
            }
            // ord: lifecycle flag, polled once per read timeout
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(SessionEnd::Shutdown);
            }
            if !cfg.idle_deadline.is_zero() && last_frame.elapsed() >= cfg.idle_deadline {
                // The reaper: no complete frame within the deadline.
                // One parting Error frame (best effort), then evict.
                let _ = reply(
                    &mut writer,
                    &Response::Error(format!(
                        "idle deadline exceeded: no complete frame in {:?}",
                        cfg.idle_deadline
                    )),
                )
                .and_then(|()| writer.flush().map_err(NetError::Io));
                return Ok(SessionEnd::IdleEvicted);
            }
            match reader.read(&mut chunk) {
                Ok(0) => {
                    // EOF: clean only at a frame boundary — a partial
                    // frame left buffered means the peer tore the
                    // stream mid-frame.
                    return Ok(if asm.pending_bytes() == 0 {
                        SessionEnd::Clean
                    } else {
                        SessionEnd::TornEof
                    });
                }
                Ok(n) => asm.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        // Phase 2: drain everything the client already pipelined,
        // without blocking, and cut it into this batch.
        reader.set_nonblocking(true).ok();
        loop {
            match reader.read(&mut chunk) {
                Ok(0) => break, // half-closed; serve what we have
                Ok(n) => asm.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        reader.set_nonblocking(false).ok();
        let mut framing_violation = None;
        while batch.len() < cfg.batch_cap {
            match asm.next_frame() {
                Ok(Some(payload)) => {
                    batch.push(payload);
                    last_frame = Instant::now();
                }
                Ok(None) => break,
                Err(e) => {
                    // Serve the complete frames first, then report and
                    // drop the connection: past a framing lie there is
                    // no next frame boundary.
                    framing_violation = Some(e);
                    break;
                }
            }
        }
        // Execute the batch: point ops share one epoch pin; a scan
        // releases it (each window re-pins internally) and streams its
        // windows in place, keeping replies in request order.
        shared.batches.fetch_add(1, Ordering::SeqCst); // ord: stats counter, once per batch
        shared
            .batched_ops
            // ord: stats counter, once per batch
            .fetch_add(batch.len() as u64, Ordering::SeqCst);
        {
            let mut pin = Some(crossbeam_epoch::pin());
            for payload in batch.drain(..) {
                // Injected mid-batch connection kill: the remaining
                // requests of the batch get no reply and the socket
                // drops abruptly — the client-side ambiguity the
                // Retry/Unknown protocol exists for.
                if faultpoint::fire("net.conn.drop") {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected connection drop mid-batch",
                    )));
                }
                match Request::decode(&payload) {
                    Ok(Request::RangeScan {
                        structure,
                        lo,
                        hi,
                        window,
                    }) => {
                        drop(pin.take());
                        match shared.sets.get(structure as usize) {
                            Some(set) => {
                                // ord: lifecycle flag; draining servers reject new streams
                                let draining = shared.shutdown.load(Ordering::SeqCst);
                                let slot = if draining {
                                    None
                                } else {
                                    ScanSlot::acquire(shared, cfg.max_scans)
                                };
                                match slot {
                                    Some(_slot) => {
                                        if !stream_scan(
                                            &**set,
                                            lo,
                                            hi,
                                            window,
                                            shared,
                                            &mut writer,
                                        )? {
                                            // Aborted for shutdown:
                                            // drop the connection, the
                                            // process is going away.
                                            return Ok(SessionEnd::Shutdown);
                                        }
                                    }
                                    None => {
                                        // Graceful degradation: this
                                        // stream is refused, the
                                        // connection and its point ops
                                        // keep working.
                                        shared.scans_rejected.fetch_add(1, Ordering::SeqCst); // ord: stats counter
                                        reply(&mut writer, &Response::Busy)?;
                                    }
                                }
                            }
                            None => reply(
                                &mut writer,
                                &Response::Error(unknown_structure(shared, structure)),
                            )?,
                        }
                    }
                    Ok(Request::Stats) => {
                        let resp = Response::Stats(shared.stats());
                        reply(&mut writer, &resp)?;
                    }
                    Ok(req) => {
                        if pin.is_none() {
                            pin = Some(crossbeam_epoch::pin());
                        }
                        let resp = point_op(shared, &req);
                        reply(&mut writer, &resp)?;
                    }
                    Err(msg) => {
                        drop(pin.take());
                        reply(&mut writer, &Response::Error(format!("bad request: {msg}")))?;
                        writer.flush()?;
                        return Err(NetError::Malformed(msg));
                    }
                }
            }
        }
        writer.flush()?;
        if let Some(violation) = framing_violation {
            reply(&mut writer, &Response::Error(violation.to_string()))?;
            writer.flush()?;
            return Err(violation);
        }
    }
}

/// Encode and frame one response. The `net.frame.torn` fault point
/// cuts the frame mid-payload (header + a prefix reach the wire) and
/// fails, which drops the connection — the torn-write failure mode a
/// crashing server produces.
fn reply(w: &mut impl Write, resp: &Response) -> Result<(), NetError> {
    let mut payload = Vec::new();
    resp.encode(&mut payload);
    if faultpoint::fire("net.frame.torn") {
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&payload[..payload.len() / 2])?;
        w.flush()?;
        return Err(NetError::Io(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "injected torn frame",
        )));
    }
    write_frame(w, &payload)?;
    Ok(())
}

fn unknown_structure(shared: &Shared, id: u16) -> String {
    format!(
        "unknown structure id {id} (serving {} structures: {})",
        shared.names.len(),
        shared.names.join(", ")
    )
}

/// Execute one point request. Out-of-domain arguments answer `Error`
/// instead of tripping the trait's panic inside a session thread.
fn point_op(shared: &Shared, req: &Request) -> Response {
    let Some(set) = shared.sets.get(req.structure() as usize) else {
        return Response::Error(unknown_structure(shared, req.structure()));
    };
    let domain_err = |what: &str, v: u64, cap: u64| {
        Response::Error(format!("{what} {v} outside the served domain (max {cap})"))
    };
    match *req {
        Request::Get { key, .. } => {
            if key > conc_set::MAX_KEY {
                return domain_err("key", key, conc_set::MAX_KEY);
            }
            Response::Value(set.get(key))
        }
        Request::Insert { key, count, .. } => {
            if key > conc_set::MAX_KEY {
                return domain_err("key", key, conc_set::MAX_KEY);
            }
            if count == 0 || count > conc_set::MAX_COUNT {
                return domain_err("count", count, conc_set::MAX_COUNT);
            }
            Response::Value(set.insert(key, count))
        }
        Request::Remove { key, count, .. } => {
            if key > conc_set::MAX_KEY {
                return domain_err("key", key, conc_set::MAX_KEY);
            }
            if count == 0 || count > conc_set::MAX_COUNT {
                return domain_err("count", count, conc_set::MAX_COUNT);
            }
            Response::Value(set.remove(key, count))
        }
        Request::Len { .. } => Response::Value(set.len()),
        Request::RangeCount { lo, hi, .. } => Response::Value(set.range_count(lo, hi)),
        Request::RangeScan { .. } | Request::Stats => {
            unreachable!("scans and stats are handled by the session loop")
        }
    }
}

/// Drive a windowed cursor over `[lo, hi]`, writing one `ScanWindow`
/// frame per validated window and a final `ScanDone`. Bounded memory
/// (one window), bounded retry work per window (cursor contract), and
/// a flush per window so the client sees the stream progress while the
/// scan is still running. Returns `false` if the stream was abandoned
/// because the server began shutting down (the caller drops the
/// connection).
fn stream_scan(
    set: &dyn ConcurrentOrderedSet,
    lo: u64,
    hi: u64,
    window: u64,
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
) -> Result<bool, NetError> {
    let window = window.clamp(1, MAX_SCAN_WINDOW);
    let mut cursor = set.scan(lo, hi, ScanOpts::windowed(window));
    let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(window as usize);
    let mut attempts = 0u32;
    loop {
        // ord: lifecycle flag, polled once per window
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(false);
        }
        // Injected mid-stream kill: the client got some windows, then
        // the connection vanished without a ScanDone.
        if faultpoint::fire("net.scan.drop") {
            return Err(NetError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected connection drop mid-scan-stream",
            )));
        }
        pairs.clear();
        match cursor.next_window(&mut |k, c| pairs.push((k, c))) {
            ScanStep::Emitted { .. } => {
                attempts = 0;
                let resp = Response::ScanWindow(std::mem::take(&mut pairs));
                reply(writer, &resp)?;
                writer.flush()?;
                // Reclaim the window buffer for the next attempt.
                let Response::ScanWindow(mut v) = resp else {
                    unreachable!()
                };
                v.clear();
                pairs = v;
            }
            ScanStep::Retry => {
                // Writers are never blocked; the scanner pays for the
                // conflict. Spin a little, then yield.
                attempts += 1;
                if attempts > 8 {
                    thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            ScanStep::Done => {
                reply(writer, &Response::ScanDone)?;
                writer.flush()?;
                return Ok(true);
            }
        }
    }
}
