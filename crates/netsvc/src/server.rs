//! The threaded TCP server: one session thread per connection,
//! server-side op batching, streamed range scans.
//!
//! # Batching
//!
//! A session does not serve requests one read() at a time. Each cycle
//! it blocks for the *first* complete frame, then drains every byte
//! the client has already pipelined (a non-blocking read loop) and
//! cuts the re-assembled frames into one batch of up to
//! [`ServerConfig::batch_cap`] requests. The batch's point operations
//! all execute under a **single epoch pin**: `crossbeam_epoch::pin()`
//! is re-entrant, so the per-operation pins inside the structures
//! collapse into cheap re-entries and the epoch-entry cost — the fee
//! the paper's reclamation assumption charges every operation — is
//! paid once per batch instead of once per op. Replies are written in
//! request order and flushed once per batch. That is why pipeline
//! depth translates into server-side throughput: depth-N clients
//! amortize both the syscalls and the epoch machinery N ways.
//!
//! # Scan streaming
//!
//! A [`Request::RangeScan`] maps onto the structure's windowed
//! [`ScanCursor`](conc_set::ScanCursor): the session drives
//! `next_window` and writes each validated window as its own
//! [`Response::ScanWindow`] frame, then [`Response::ScanDone`]. Memory
//! at the server is bounded by one window regardless of range size;
//! writers are never blocked (cursor validation retries only the dirty
//! window, with backoff); and the stream is interleaved *between* a
//! batch's point replies at its request's position, preserving
//! in-order replies. The batch pin is dropped before a scan starts —
//! each window pins internally, so a long stream never holds one epoch
//! open.
//!
//! # Lifecycle
//!
//! The accept loop polls a shutdown flag between non-blocking accepts;
//! sessions poll it on a 50 ms read timeout while idle. A client
//! disconnect anywhere — between frames, mid-frame, or mid-scan-stream
//! — just ends that session: the cursor and buffers drop with the
//! stack, the active-session count decrements, nothing wedges.

use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use conc_set::{ConcurrentOrderedSet, ScanOpts, ScanStep, StructureSpec};

use crate::codec::{write_frame, FrameAssembler, NetError, Request, Response, MAX_SCAN_WINDOW};

/// Server construction knobs; [`ServerConfig::default`] reads the
/// `LLX_NET_*` environment via [`workloads::knobs`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`LLX_NET_ADDR`, default `127.0.0.1:0` — an
    /// OS-assigned loopback port; read the actual one back from
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Max requests per session batch (`LLX_NET_BATCH`, default 64).
    pub batch_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: workloads::knobs::net_addr(),
            batch_cap: workloads::knobs::net_batch(),
        }
    }
}

/// Shared server state: the structures and the counters every session
/// updates.
struct Shared {
    /// The served structures, indexed by the protocol's `structure`
    /// id, in spec-list order.
    sets: Vec<Arc<dyn ConcurrentOrderedSet>>,
    /// Canonical spec strings, parallel to `sets`.
    names: Vec<String>,
    /// Set once by [`Server::shutdown`]; accept loop and sessions poll
    /// it.
    shutdown: AtomicBool,
    /// Live session threads.
    active_sessions: AtomicUsize,
    /// Batches executed across all sessions.
    batches: AtomicU64,
    /// Requests executed across all sessions (batched_ops / batches =
    /// achieved amortization).
    batched_ops: AtomicU64,
}

/// A running network service over a set of structure specs. Dropping
/// the handle shuts the server down.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("structures", &self.shared.names)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Build one structure per spec and serve them all; returns once
    /// the listener is bound and accepting.
    pub fn spawn(specs: &[StructureSpec], config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            sets: specs.iter().map(|s| Arc::from(s.build())).collect(),
            names: specs.iter().map(|s| s.to_string()).collect(),
            shutdown: AtomicBool::new(false),
            active_sessions: AtomicUsize::new(0),
            batches: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            let batch_cap = config.batch_cap.max(1);
            thread::Builder::new()
                .name("netsvc-accept".into())
                .spawn(move || accept_loop(listener, shared, batch_cap))?
        };
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Canonical spec strings, in `structure`-id order.
    pub fn structure_names(&self) -> &[String] {
        &self.shared.names
    }

    /// Direct handle to a served structure (for in-process conservation
    /// checks at quiescence).
    pub fn structure(&self, id: u16) -> Option<Arc<dyn ConcurrentOrderedSet>> {
        self.shared.sets.get(id as usize).cloned()
    }

    /// Currently live session threads.
    pub fn active_sessions(&self) -> usize {
        // ord: control-plane gauge polled at ms granularity, not a protocol step
        self.shared.active_sessions.load(Ordering::SeqCst)
    }

    /// `(batches, requests)` executed so far across all sessions; the
    /// ratio is the achieved per-batch amortization.
    pub fn batch_stats(&self) -> (u64, u64) {
        (
            self.shared.batches.load(Ordering::SeqCst), // ord: stats counter, off hot path
            self.shared.batched_ops.load(Ordering::SeqCst), // ord: stats counter, off hot path
        )
    }

    /// Stop accepting, wake idle sessions, and wait (bounded) for all
    /// session threads to exit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // ord: lifecycle flag polled at ms granularity, not a protocol step
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Sessions notice the flag within one 50 ms read timeout; give
        // stragglers (e.g. one mid-scan-stream) a grace period rather
        // than blocking shutdown on a hostile client.
        let deadline = Instant::now() + Duration::from_secs(5);
        // ord: control-plane gauge (see active_sessions)
        while self.shared.active_sessions.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accept connections until shutdown, one session thread each.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, batch_cap: usize) {
    // ord: lifecycle flag, polled between accepts
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let session_shared = Arc::clone(&shared);
                // ord: session gauge, once per connection
                shared.active_sessions.fetch_add(1, Ordering::SeqCst);
                let spawned =
                    thread::Builder::new()
                        .name("netsvc-session".into())
                        .spawn(move || {
                            let _ = session(stream, &session_shared, batch_cap);
                            session_shared
                                .active_sessions
                                // ord: session gauge, once per connection
                                .fetch_sub(1, Ordering::SeqCst);
                        });
                if spawned.is_err() {
                    // Spawn failure drops the connection; the count
                    // must not leak a phantom session.
                    // ord: session gauge, once per connection
                    shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One connection's lifetime: batch-read, batch-execute, reply
/// in order, repeat until disconnect, protocol violation, or shutdown.
fn session(stream: TcpStream, shared: &Shared, batch_cap: usize) -> Result<(), NetError> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = stream;
    let mut asm = FrameAssembler::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut batch: Vec<Vec<u8>> = Vec::with_capacity(batch_cap);
    loop {
        batch.clear();
        // Phase 1: block (on a shutdown-polling timeout) until at
        // least one complete frame is buffered.
        loop {
            match asm.next_frame() {
                Ok(Some(payload)) => {
                    batch.push(payload);
                    break;
                }
                Ok(None) => {}
                Err(violation) => {
                    // A framing lie leaves no recoverable boundary:
                    // report once and drop the connection.
                    reply(&mut writer, &Response::Error(violation.to_string()))?;
                    writer.flush()?;
                    return Err(violation);
                }
            }
            // ord: lifecycle flag, polled once per read timeout
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            match reader.read(&mut chunk) {
                Ok(0) => return Ok(()), // client went away
                Ok(n) => asm.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        // Phase 2: drain everything the client already pipelined,
        // without blocking, and cut it into this batch.
        reader.set_nonblocking(true).ok();
        loop {
            match reader.read(&mut chunk) {
                Ok(0) => break, // half-closed; serve what we have
                Ok(n) => asm.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        reader.set_nonblocking(false).ok();
        let mut framing_violation = None;
        while batch.len() < batch_cap {
            match asm.next_frame() {
                Ok(Some(payload)) => batch.push(payload),
                Ok(None) => break,
                Err(e) => {
                    // Serve the complete frames first, then report and
                    // drop the connection: past a framing lie there is
                    // no next frame boundary.
                    framing_violation = Some(e);
                    break;
                }
            }
        }
        // Execute the batch: point ops share one epoch pin; a scan
        // releases it (each window re-pins internally) and streams its
        // windows in place, keeping replies in request order.
        shared.batches.fetch_add(1, Ordering::SeqCst); // ord: stats counter, once per batch
        shared
            .batched_ops
            // ord: stats counter, once per batch
            .fetch_add(batch.len() as u64, Ordering::SeqCst);
        {
            let mut pin = Some(crossbeam_epoch::pin());
            for payload in batch.drain(..) {
                match Request::decode(&payload) {
                    Ok(Request::RangeScan {
                        structure,
                        lo,
                        hi,
                        window,
                    }) => {
                        drop(pin.take());
                        match shared.sets.get(structure as usize) {
                            Some(set) => stream_scan(&**set, lo, hi, window, &mut writer)?,
                            None => reply(
                                &mut writer,
                                &Response::Error(unknown_structure(shared, structure)),
                            )?,
                        }
                    }
                    Ok(req) => {
                        if pin.is_none() {
                            pin = Some(crossbeam_epoch::pin());
                        }
                        let resp = point_op(shared, &req);
                        reply(&mut writer, &resp)?;
                    }
                    Err(msg) => {
                        drop(pin.take());
                        reply(&mut writer, &Response::Error(format!("bad request: {msg}")))?;
                        writer.flush()?;
                        return Err(NetError::Malformed(msg));
                    }
                }
            }
        }
        writer.flush()?;
        if let Some(violation) = framing_violation {
            reply(&mut writer, &Response::Error(violation.to_string()))?;
            writer.flush()?;
            return Err(violation);
        }
    }
}

/// Encode and frame one response.
fn reply(w: &mut impl Write, resp: &Response) -> Result<(), NetError> {
    let mut payload = Vec::new();
    resp.encode(&mut payload);
    write_frame(w, &payload)?;
    Ok(())
}

fn unknown_structure(shared: &Shared, id: u16) -> String {
    format!(
        "unknown structure id {id} (serving {} structures: {})",
        shared.names.len(),
        shared.names.join(", ")
    )
}

/// Execute one point request. Out-of-domain arguments answer `Error`
/// instead of tripping the trait's panic inside a session thread.
fn point_op(shared: &Shared, req: &Request) -> Response {
    let Some(set) = shared.sets.get(req.structure() as usize) else {
        return Response::Error(unknown_structure(shared, req.structure()));
    };
    let domain_err = |what: &str, v: u64, cap: u64| {
        Response::Error(format!("{what} {v} outside the served domain (max {cap})"))
    };
    match *req {
        Request::Get { key, .. } => {
            if key > conc_set::MAX_KEY {
                return domain_err("key", key, conc_set::MAX_KEY);
            }
            Response::Value(set.get(key))
        }
        Request::Insert { key, count, .. } => {
            if key > conc_set::MAX_KEY {
                return domain_err("key", key, conc_set::MAX_KEY);
            }
            if count == 0 || count > conc_set::MAX_COUNT {
                return domain_err("count", count, conc_set::MAX_COUNT);
            }
            Response::Value(set.insert(key, count))
        }
        Request::Remove { key, count, .. } => {
            if key > conc_set::MAX_KEY {
                return domain_err("key", key, conc_set::MAX_KEY);
            }
            if count == 0 || count > conc_set::MAX_COUNT {
                return domain_err("count", count, conc_set::MAX_COUNT);
            }
            Response::Value(set.remove(key, count))
        }
        Request::Len { .. } => Response::Value(set.len()),
        Request::RangeCount { lo, hi, .. } => Response::Value(set.range_count(lo, hi)),
        Request::RangeScan { .. } => unreachable!("scans stream; handled by the session loop"),
    }
}

/// Drive a windowed cursor over `[lo, hi]`, writing one `ScanWindow`
/// frame per validated window and a final `ScanDone`. Bounded memory
/// (one window), bounded retry work per window (cursor contract), and
/// a flush per window so the client sees the stream progress while the
/// scan is still running.
fn stream_scan(
    set: &dyn ConcurrentOrderedSet,
    lo: u64,
    hi: u64,
    window: u64,
    writer: &mut BufWriter<TcpStream>,
) -> Result<(), NetError> {
    let window = window.clamp(1, MAX_SCAN_WINDOW);
    let mut cursor = set.scan(lo, hi, ScanOpts::windowed(window));
    let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(window as usize);
    let mut attempts = 0u32;
    loop {
        pairs.clear();
        match cursor.next_window(&mut |k, c| pairs.push((k, c))) {
            ScanStep::Emitted { .. } => {
                attempts = 0;
                let resp = Response::ScanWindow(std::mem::take(&mut pairs));
                reply(writer, &resp)?;
                writer.flush()?;
                // Reclaim the window buffer for the next attempt.
                let Response::ScanWindow(mut v) = resp else {
                    unreachable!()
                };
                v.clear();
                pairs = v;
            }
            ScanStep::Retry => {
                // Writers are never blocked; the scanner pays for the
                // conflict. Spin a little, then yield.
                attempts += 1;
                if attempts > 8 {
                    thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            ScanStep::Done => {
                reply(writer, &Response::ScanDone)?;
                writer.flush()?;
                return Ok(());
            }
        }
    }
}
