//! A network service tier over the [`conc_set`] structure zoo: a
//! std-only threaded TCP server with a compact binary protocol,
//! server-side op batching, and streamed windowed range scans.
//!
//! The paper's primitives build *shared-memory* structures; this crate
//! completes the systems story by putting the whole registry — every
//! [`StructureSpec`](conc_set::StructureSpec) the `LLX_STRUCT` grammar
//! can express, `sharded(...)` composites included — behind a socket,
//! the way such structures are actually consumed (a cache shard, an
//! index server). Three design points carry over from the paper's
//! concerns:
//!
//! * **Batching amortizes the epoch machinery.** A session drains every
//!   request the client has pipelined into one batch and executes the
//!   point ops under a single `crossbeam_epoch::pin()`; the
//!   reclamation fee the paper's GC assumption charges per operation is
//!   paid once per batch (`bench-harness serve` measures the resulting
//!   pipeline-depth speedup).
//! * **Scans stream without blocking writers.** `RangeScan` maps to the
//!   windowed [`ScanCursor`](conc_set::ScanCursor) of PR 4: each
//!   validated window travels as its own frame, so server memory is one
//!   window regardless of range size, conflicts retry only the dirty
//!   window, and the consistency the wire offers is exactly the
//!   cursor's per-window atomicity.
//! * **No runtime dependencies.** Threads and blocking sockets from
//!   `std` only — one session thread per connection, no async runtime,
//!   nothing to install.
//!
//! * **Failure is a first-class input.** The server bounds what a
//!   hostile client population can take from it (session cap with
//!   accept-time `Busy` shedding, an idle-deadline reaper that evicts
//!   slow-loris connections, a concurrent-scan cap) and counts every
//!   exit path in a wire-queryable [`NetStats`]; the
//!   [`ResilientClient`] adds timeouts, jittered capped-exponential
//!   reconnect, and an at-most-once mutation protocol
//!   ([`MutationOutcome`]) that never double-applies. The `faultpoint`
//!   crate's injection points (`net.conn.drop`, `net.frame.torn`,
//!   `net.scan.drop`) drive exactly these paths deterministically.
//!
//! See [`codec`] for the wire protocol, [`server`] for batching and
//! lifecycle, [`client`] for the pipelining-friendly blocking client
//! and the resilient wrapper.
//!
//! # Example
//!
//! ```
//! use conc_set::StructureSpec;
//! use netsvc::{Client, Server, ServerConfig};
//!
//! let specs = vec![StructureSpec::parse("scx-multiset").unwrap()];
//! let server = Server::spawn(&specs, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! assert_eq!(client.insert(0, 7, 2).unwrap(), 2);
//! assert_eq!(client.get(0, 7).unwrap(), 2);
//! assert_eq!(client.range_scan(0, 0, 100, 8).unwrap(), vec![(7, 2)]);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod codec;
pub mod server;

pub use client::{
    Client, ClientConfig, ClientCounters, MutationOutcome, ResilientClient, RetryPolicy,
};
pub use codec::{
    FrameAssembler, NetError, NetStats, Request, Response, MAX_PAYLOAD, MAX_SCAN_WINDOW,
};
pub use server::{Server, ServerConfig};
