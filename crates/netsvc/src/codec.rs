//! The wire protocol: length-prefixed frames around fixed-layout binary
//! requests and responses.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts the payload only and must be in `1..=`[`MAX_PAYLOAD`];
//! anything else is a malformed frame and the peer must drop the
//! connection (after a length-field lie the stream has no recoverable
//! frame boundary). The payload's first byte is an opcode; all integers
//! are little-endian and every layout is fixed-width, so decoding is
//! exact-length checked: trailing bytes are as malformed as missing
//! ones.
//!
//! # Request payloads
//!
//! | op | name       | layout after the opcode byte                  |
//! |----|------------|-----------------------------------------------|
//! | 0  | Get        | `structure: u16`, `key: u64`                  |
//! | 1  | Insert     | `structure: u16`, `key: u64`, `count: u64`    |
//! | 2  | Remove     | `structure: u16`, `key: u64`, `count: u64`    |
//! | 3  | Len        | `structure: u16`                              |
//! | 4  | RangeCount | `structure: u16`, `lo: u64`, `hi: u64`        |
//! | 5  | RangeScan  | `structure: u16`, `lo: u64`, `hi: u64`, `window: u64` |
//! | 6  | Stats      | (empty — server-global, no structure id)      |
//!
//! `structure` indexes the server's spec list (the order given to
//! [`Server::spawn`](crate::Server::spawn)).
//!
//! # Response payloads
//!
//! | op | name       | layout after the opcode byte                  |
//! |----|------------|-----------------------------------------------|
//! | 0  | Value      | `value: u64`                                  |
//! | 1  | Error      | `len: u16`, `len` bytes of UTF-8              |
//! | 2  | ScanWindow | `n: u32`, then `n` × (`key: u64`, `count: u64`) |
//! | 3  | ScanDone   | (empty)                                       |
//! | 4  | Busy       | (empty)                                       |
//! | 5  | Stats      | 9 × `u64` ([`NetStats`] fields in declaration order) |
//!
//! Point requests answer with exactly one `Value` or `Error` frame. A
//! `RangeScan` answers with a *stream*: zero or more `ScanWindow`
//! frames (one per validated cursor window, ≤ `window` pairs each)
//! terminated by one `ScanDone` — so a scan over an arbitrarily large
//! range needs only one window of memory at either end of the wire.
//! An overloaded server may answer a `RangeScan` with a single `Busy`
//! frame instead of a stream (and sheds whole connections with `Busy`
//! at accept time); `Busy` is a definite "not executed" — safe to
//! retry after backoff. `Stats` answers one `Stats` frame.

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload. A length field above this is a
/// protocol violation, not a big frame: the cap rejects garbage/hostile
/// lengths before any allocation and bounds per-connection memory.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Largest scan window the server honors; chosen so a full
/// `ScanWindow` frame (`1 + 4 + 16·n` bytes) still fits
/// [`MAX_PAYLOAD`]. Larger requested windows are clamped, not
/// rejected.
pub const MAX_SCAN_WINDOW: u64 = 4000;

/// One client request. See the [module docs](self) for the wire
/// layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Occurrences of `key` in structure `structure`.
    Get {
        /// Index into the server's spec list.
        structure: u16,
        /// The key to look up.
        key: u64,
    },
    /// Add `count` occurrences of `key`; answers the number added.
    Insert {
        /// Index into the server's spec list.
        structure: u16,
        /// The key to insert.
        key: u64,
        /// Occurrences to add (distinct structures treat any count as 1).
        count: u64,
    },
    /// Remove `count` occurrences of `key`; answers the number removed.
    Remove {
        /// Index into the server's spec list.
        structure: u16,
        /// The key to remove.
        key: u64,
        /// Occurrences to remove.
        count: u64,
    },
    /// Total occurrences across all keys.
    Len {
        /// Index into the server's spec list.
        structure: u16,
    },
    /// Occurrences with keys in `[lo, hi]`, one consistent snapshot.
    RangeCount {
        /// Index into the server's spec list.
        structure: u16,
        /// Inclusive lower key bound.
        lo: u64,
        /// Inclusive upper key bound.
        hi: u64,
    },
    /// Stream the `(key, count)` pairs of `[lo, hi]` window by window.
    RangeScan {
        /// Index into the server's spec list.
        structure: u16,
        /// Inclusive lower key bound.
        lo: u64,
        /// Inclusive upper key bound.
        hi: u64,
        /// Keys per validated window (clamped to `1..=`[`MAX_SCAN_WINDOW`]).
        window: u64,
    },
    /// Server-global session/robustness counters ([`NetStats`]). The
    /// only request without a structure id.
    Stats,
}

/// Server-global counters answered to a [`Request::Stats`]; every field
/// is monotonic over the server's lifetime except `active_sessions`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Currently live session threads.
    pub active_sessions: u64,
    /// Sessions ever accepted (shed connections not included).
    pub total_sessions: u64,
    /// Connections refused at accept time because the session cap
    /// (`LLX_NET_MAX_SESSIONS`) was reached; each was answered `Busy`.
    pub shed_sessions: u64,
    /// Sessions evicted by the idle-deadline reaper (no complete frame
    /// within `LLX_NET_IDLE_MS` — slow-loris clients land here).
    pub idle_evictions: u64,
    /// Sessions that ended in an error: I/O failure, protocol
    /// violation, EOF mid-frame, or an injected wire fault.
    pub session_errors: u64,
    /// Sessions that ended with a clean EOF at a frame boundary (the
    /// client's `Drop` shutdown lands here).
    pub clean_drains: u64,
    /// `RangeScan` requests rejected with `Busy` (scan-stream cap
    /// reached, or the server was draining for shutdown).
    pub scans_rejected: u64,
    /// Batches executed across all sessions.
    pub batches: u64,
    /// Requests executed across all sessions.
    pub batched_ops: u64,
}

/// One server response frame. See the [module docs](self) for the wire
/// layout and the request → response mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The point operation's result (occurrences found/added/removed,
    /// a length, or a range total).
    Value(u64),
    /// The request was well-framed but unserviceable (unknown
    /// structure id, out-of-domain key, …). The connection stays up.
    Error(String),
    /// One validated scan window: its pairs held simultaneously at the
    /// window's linearization point (per-window atomicity, exactly the
    /// windowed-cursor contract).
    ScanWindow(Vec<(u64, u64)>),
    /// The scan's range is exhausted; the stream is complete.
    ScanDone,
    /// The server is over capacity (session cap at accept, scan cap, or
    /// shutdown drain). The request was definitely **not** executed;
    /// retry after backoff.
    Busy,
    /// Server-global counters, answering [`Request::Stats`].
    Stats(NetStats),
}

/// A protocol-level failure: an I/O error, a malformed frame, or a
/// connection closed at a frame boundary.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer violated the framing or payload layout; the connection
    /// must be dropped (there is no recoverable frame boundary).
    Malformed(String),
    /// The peer closed the connection cleanly between frames.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Malformed(m) => write!(f, "malformed frame: {m}"),
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Little-endian field reader with exact-length accounting.
struct Fields<'a> {
    buf: &'a [u8],
}

impl<'a> Fields<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], String> {
        if self.buf.len() < N {
            return Err(format!(
                "payload truncated: wanted {N} more bytes, have {}",
                self.buf.len()
            ));
        }
        let (head, rest) = self.buf.split_at(N);
        self.buf = rest;
        Ok(head.try_into().expect("split_at(N) yields N bytes"))
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn finish(self) -> Result<(), String> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after the payload",
                self.buf.len()
            ))
        }
    }
}

impl Request {
    /// Append this request's payload (opcode + fields) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            Request::Get { structure, key } => {
                buf.push(0);
                buf.extend_from_slice(&structure.to_le_bytes());
                buf.extend_from_slice(&key.to_le_bytes());
            }
            Request::Insert {
                structure,
                key,
                count,
            } => {
                buf.push(1);
                buf.extend_from_slice(&structure.to_le_bytes());
                buf.extend_from_slice(&key.to_le_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
            }
            Request::Remove {
                structure,
                key,
                count,
            } => {
                buf.push(2);
                buf.extend_from_slice(&structure.to_le_bytes());
                buf.extend_from_slice(&key.to_le_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
            }
            Request::Len { structure } => {
                buf.push(3);
                buf.extend_from_slice(&structure.to_le_bytes());
            }
            Request::RangeCount { structure, lo, hi } => {
                buf.push(4);
                buf.extend_from_slice(&structure.to_le_bytes());
                buf.extend_from_slice(&lo.to_le_bytes());
                buf.extend_from_slice(&hi.to_le_bytes());
            }
            Request::RangeScan {
                structure,
                lo,
                hi,
                window,
            } => {
                buf.push(5);
                buf.extend_from_slice(&structure.to_le_bytes());
                buf.extend_from_slice(&lo.to_le_bytes());
                buf.extend_from_slice(&hi.to_le_bytes());
                buf.extend_from_slice(&window.to_le_bytes());
            }
            Request::Stats => buf.push(6),
        }
    }

    /// Decode one request payload; the payload must be consumed
    /// exactly.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let Some((&op, rest)) = payload.split_first() else {
            return Err("empty payload".to_string());
        };
        let mut f = Fields { buf: rest };
        let req = match op {
            0 => Request::Get {
                structure: f.u16()?,
                key: f.u64()?,
            },
            1 => Request::Insert {
                structure: f.u16()?,
                key: f.u64()?,
                count: f.u64()?,
            },
            2 => Request::Remove {
                structure: f.u16()?,
                key: f.u64()?,
                count: f.u64()?,
            },
            3 => Request::Len {
                structure: f.u16()?,
            },
            4 => Request::RangeCount {
                structure: f.u16()?,
                lo: f.u64()?,
                hi: f.u64()?,
            },
            5 => Request::RangeScan {
                structure: f.u16()?,
                lo: f.u64()?,
                hi: f.u64()?,
                window: f.u64()?,
            },
            6 => Request::Stats,
            other => return Err(format!("unknown request opcode {other}")),
        };
        f.finish()?;
        Ok(req)
    }

    /// The structure id the request addresses. [`Request::Stats`] is
    /// server-global and answers `0` here; the session loop intercepts
    /// it before any structure lookup, so the value is never consulted.
    pub fn structure(&self) -> u16 {
        match *self {
            Request::Get { structure, .. }
            | Request::Insert { structure, .. }
            | Request::Remove { structure, .. }
            | Request::Len { structure }
            | Request::RangeCount { structure, .. }
            | Request::RangeScan { structure, .. } => structure,
            Request::Stats => 0,
        }
    }
}

impl Response {
    /// Append this response's payload (opcode + fields) to `buf`.
    ///
    /// Error messages longer than `u16::MAX` bytes and windows larger
    /// than [`MAX_SCAN_WINDOW`] are truncated — the encoder never
    /// produces an over-[`MAX_PAYLOAD`] frame.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Value(v) => {
                buf.push(0);
                buf.extend_from_slice(&v.to_le_bytes());
            }
            Response::Error(msg) => {
                buf.push(1);
                let bytes = msg.as_bytes();
                let take = floor_char_boundary(msg, bytes.len().min(u16::MAX as usize));
                buf.extend_from_slice(&(take as u16).to_le_bytes());
                buf.extend_from_slice(&bytes[..take]);
            }
            Response::ScanWindow(pairs) => {
                buf.push(2);
                let n = pairs.len().min(MAX_SCAN_WINDOW as usize);
                buf.extend_from_slice(&(n as u32).to_le_bytes());
                for &(k, c) in &pairs[..n] {
                    buf.extend_from_slice(&k.to_le_bytes());
                    buf.extend_from_slice(&c.to_le_bytes());
                }
            }
            Response::ScanDone => buf.push(3),
            Response::Busy => buf.push(4),
            Response::Stats(s) => {
                buf.push(5);
                for v in [
                    s.active_sessions,
                    s.total_sessions,
                    s.shed_sessions,
                    s.idle_evictions,
                    s.session_errors,
                    s.clean_drains,
                    s.scans_rejected,
                    s.batches,
                    s.batched_ops,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    /// Decode one response payload; the payload must be consumed
    /// exactly.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let Some((&op, rest)) = payload.split_first() else {
            return Err("empty payload".to_string());
        };
        let mut f = Fields { buf: rest };
        let resp = match op {
            0 => Response::Value(f.u64()?),
            1 => {
                let len = f.u16()? as usize;
                if f.buf.len() != len {
                    return Err(format!(
                        "error-message length {len} disagrees with payload ({} bytes left)",
                        f.buf.len()
                    ));
                }
                let msg = std::str::from_utf8(f.buf)
                    .map_err(|e| format!("error message is not UTF-8: {e}"))?
                    .to_string();
                return Ok(Response::Error(msg));
            }
            2 => {
                let n = f.u32()? as usize;
                if n > MAX_SCAN_WINDOW as usize {
                    return Err(format!(
                        "scan window of {n} pairs exceeds the cap {MAX_SCAN_WINDOW}"
                    ));
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((f.u64()?, f.u64()?));
                }
                Response::ScanWindow(pairs)
            }
            3 => Response::ScanDone,
            4 => Response::Busy,
            5 => Response::Stats(NetStats {
                active_sessions: f.u64()?,
                total_sessions: f.u64()?,
                shed_sessions: f.u64()?,
                idle_evictions: f.u64()?,
                session_errors: f.u64()?,
                clean_drains: f.u64()?,
                scans_rejected: f.u64()?,
                batches: f.u64()?,
                batched_ops: f.u64()?,
            }),
            other => return Err(format!("unknown response opcode {other}")),
        };
        f.finish()?;
        Ok(resp)
    }
}

/// `str::floor_char_boundary` is unstable; the hand-rolled equivalent
/// for truncating error messages on a UTF-8 boundary.
fn floor_char_boundary(s: &str, mut at: usize) -> usize {
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// Write one frame (header + payload).
///
/// # Panics
///
/// Panics if `payload` is empty or longer than [`MAX_PAYLOAD`] — both
/// encoders stay within the bound by construction, so this is a local
/// logic error, never a peer-triggered one.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_PAYLOAD,
        "frame payload of {} bytes outside 1..={MAX_PAYLOAD}",
        payload.len()
    );
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one complete frame, blocking; returns its payload.
///
/// Distinguishes a clean close (EOF on the first header byte →
/// [`NetError::Closed`]) from a truncated frame (EOF anywhere later →
/// [`NetError::Malformed`]). Handles arbitrary read fragmentation —
/// the header and payload may arrive one byte at a time.
pub fn read_frame(r: &mut impl Read, payload: &mut Vec<u8>) -> Result<(), NetError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(NetError::Closed),
            Ok(0) => {
                return Err(NetError::Malformed(format!(
                    "connection closed after {got} header bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_PAYLOAD {
        return Err(NetError::Malformed(format!(
            "frame length {len} outside 1..={MAX_PAYLOAD}"
        )));
    }
    payload.clear();
    payload.resize(len, 0);
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(NetError::Malformed(format!(
                    "connection closed {got} bytes into a {len}-byte payload"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(())
}

/// Incremental frame re-assembler for the server's batch-drain loop:
/// bytes go in as they arrive (in arbitrary fragments), complete
/// frames come out. Partial frames — a header split across TCP
/// segments, a payload missing its tail — simply stay buffered until
/// the rest arrives.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted when it outgrows the live
    /// remainder so per-connection memory stays O(bytes buffered).
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Feed bytes received from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame's payload, `Ok(None)` if more bytes
    /// are needed, or [`NetError::Malformed`] on an in-stream framing
    /// violation (after which the connection is beyond recovery).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4-byte slice")) as usize;
        if len == 0 || len > MAX_PAYLOAD {
            return Err(NetError::Malformed(format!(
                "frame length {len} outside 1..={MAX_PAYLOAD}"
            )));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Get {
                structure: 0,
                key: 7,
            },
            Request::Insert {
                structure: 1,
                key: u64::MAX - 2,
                count: 3,
            },
            Request::Remove {
                structure: 65535,
                key: 0,
                count: 1,
            },
            Request::Len { structure: 2 },
            Request::RangeCount {
                structure: 3,
                lo: 10,
                hi: 20,
            },
            Request::RangeScan {
                structure: 4,
                lo: 0,
                hi: u64::MAX,
                window: 128,
            },
            Request::Stats,
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            let mut buf = Vec::new();
            req.encode(&mut buf);
            assert_eq!(Request::decode(&buf).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Value(0),
            Response::Value(u64::MAX),
            Response::Error("unknown structure id 9".to_string()),
            Response::Error(String::new()),
            Response::ScanWindow(vec![]),
            Response::ScanWindow(vec![(1, 2), (3, 4), (u64::MAX - 2, 1)]),
            Response::ScanDone,
            Response::Busy,
            Response::Stats(NetStats::default()),
            Response::Stats(NetStats {
                active_sessions: 3,
                total_sessions: 100,
                shed_sessions: 7,
                idle_evictions: 2,
                session_errors: 5,
                clean_drains: 90,
                scans_rejected: 11,
                batches: u64::MAX,
                batched_ops: 12345,
            }),
        ];
        for resp in cases {
            let mut buf = Vec::new();
            resp.encode(&mut buf);
            assert_eq!(Response::decode(&buf).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        for req in all_requests() {
            let mut buf = Vec::new();
            req.encode(&mut buf);
            // Every strict prefix is truncated.
            for cut in 0..buf.len() {
                assert!(
                    Request::decode(&buf[..cut]).is_err(),
                    "{req:?} truncated to {cut} bytes must not decode"
                );
            }
            // Trailing garbage is rejected too.
            buf.push(0xAA);
            assert!(Request::decode(&buf).is_err(), "{req:?} + trailing byte");
        }
        assert!(Request::decode(&[]).is_err(), "empty payload");
        assert!(Request::decode(&[99, 0, 0]).is_err(), "unknown opcode");
        assert!(Response::decode(&[99]).is_err(), "unknown response opcode");
        // An Error response whose length field lies.
        assert!(Response::decode(&[1, 10, 0, b'h', b'i']).is_err());
        // A ScanWindow claiming more pairs than the cap.
        let mut big = vec![2u8];
        big.extend_from_slice(&(MAX_SCAN_WINDOW as u32 + 1).to_le_bytes());
        assert!(Response::decode(&big).is_err());
    }

    #[test]
    fn assembler_handles_one_byte_fragments() {
        let mut wire = Vec::new();
        let reqs = all_requests();
        for req in &reqs {
            let mut payload = Vec::new();
            req.encode(&mut payload);
            write_frame(&mut wire, &payload).unwrap();
        }
        let mut asm = FrameAssembler::new();
        let mut decoded = Vec::new();
        for &b in &wire {
            asm.extend(&[b]);
            while let Some(payload) = asm.next_frame().unwrap() {
                decoded.push(Request::decode(&payload).unwrap());
            }
        }
        assert_eq!(decoded, reqs);
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn assembler_rejects_hostile_lengths() {
        let mut asm = FrameAssembler::new();
        asm.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(asm.next_frame(), Err(NetError::Malformed(_))));
        let mut asm = FrameAssembler::new();
        asm.extend(&0u32.to_le_bytes());
        assert!(matches!(asm.next_frame(), Err(NetError::Malformed(_))));
    }

    #[test]
    fn read_frame_distinguishes_close_from_truncation() {
        let mut buf = Vec::new();
        // Clean close: no bytes at all.
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }, &mut buf),
            Err(NetError::Closed)
        ));
        // Truncated header.
        let partial: &[u8] = &[5, 0];
        assert!(matches!(
            read_frame(&mut { partial }, &mut buf),
            Err(NetError::Malformed(_))
        ));
        // Truncated payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3, 4, 5]).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(matches!(
            read_frame(&mut wire.as_slice(), &mut buf),
            Err(NetError::Malformed(_))
        ));
        // And the happy path, byte-fragmented.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, &[9, 8, 7]).unwrap();
        read_frame(&mut OneByte(&wire), &mut buf).unwrap();
        assert_eq!(buf, vec![9, 8, 7]);
    }

    #[test]
    fn long_error_messages_truncate_on_char_boundaries() {
        let msg = "é".repeat(40_000); // 2 bytes per char > u16::MAX bytes
        let mut buf = Vec::new();
        Response::Error(msg).encode(&mut buf);
        let decoded = Response::decode(&buf).unwrap();
        match decoded {
            Response::Error(m) => assert!(m.len() <= u16::MAX as usize),
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
