//! The blocking client: a framed TCP connection with an explicit
//! send/recv split so callers can pipeline.
//!
//! [`Client::call`] is the one-shot convenience (send + flush + recv).
//! For pipelining, issue several [`Client::send`]s, [`Client::flush`]
//! once, then [`Client::recv`] the replies in order — the server
//! guarantees reply order matches request order, and drains the whole
//! pipeline into one batch at its end (see the
//! [server docs](crate::server)). A [`Request::RangeScan`] answers
//! with multiple frames; [`Client::recv`] returns them one at a time
//! ([`Response::ScanWindow`]* then [`Response::ScanDone`]), or
//! [`Client::range_scan`] collects a whole stream.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::codec::{read_frame, write_frame, NetError, Request, Response};

/// A blocking connection to a [`Server`](crate::Server).
#[derive(Debug)]
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    /// Reusable frame-payload scratch.
    buf: Vec<u8>,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: BufWriter::new(stream),
            reader,
            buf: Vec::new(),
        })
    }

    /// Queue one request (buffered; nothing hits the wire until
    /// [`flush`](Client::flush) or the buffer fills).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.buf.clear();
        req.encode(&mut self.buf);
        write_frame(&mut self.writer, &self.buf)
    }

    /// Push all queued requests to the wire.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Receive the next response frame, in request order.
    pub fn recv(&mut self) -> Result<Response, NetError> {
        self.buf.clear();
        read_frame(&mut self.reader, &mut self.buf)?;
        Response::decode(&self.buf).map_err(NetError::Malformed)
    }

    /// Send one request and wait for its (single-frame) response.
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        self.send(req)?;
        self.flush()?;
        self.recv()
    }

    /// Like [`call`](Client::call) but unwraps a `Value`, turning
    /// `Error` responses into [`NetError::Malformed`]-free errors.
    fn call_value(&mut self, req: &Request) -> Result<u64, NetError> {
        match self.call(req)? {
            Response::Value(v) => Ok(v),
            Response::Error(msg) => Err(NetError::Malformed(format!("server error: {msg}"))),
            other => Err(NetError::Malformed(format!(
                "expected a Value response, got {other:?}"
            ))),
        }
    }

    /// Occurrences of `key` in structure `structure`.
    pub fn get(&mut self, structure: u16, key: u64) -> Result<u64, NetError> {
        self.call_value(&Request::Get { structure, key })
    }

    /// Add `count` occurrences of `key`; returns the number added.
    pub fn insert(&mut self, structure: u16, key: u64, count: u64) -> Result<u64, NetError> {
        self.call_value(&Request::Insert {
            structure,
            key,
            count,
        })
    }

    /// Remove `count` occurrences of `key`; returns the number removed.
    pub fn remove(&mut self, structure: u16, key: u64, count: u64) -> Result<u64, NetError> {
        self.call_value(&Request::Remove {
            structure,
            key,
            count,
        })
    }

    /// Total occurrences across all keys.
    pub fn len(&mut self, structure: u16) -> Result<u64, NetError> {
        self.call_value(&Request::Len { structure })
    }

    /// Occurrences with keys in `[lo, hi]` (one consistent snapshot at
    /// the server).
    pub fn range_count(&mut self, structure: u16, lo: u64, hi: u64) -> Result<u64, NetError> {
        self.call_value(&Request::RangeCount { structure, lo, hi })
    }

    /// Stream a windowed scan of `[lo, hi]` and collect every pair.
    /// Each window the server emitted was internally
    /// snapshot-consistent; the collected whole has per-window
    /// consistency (windows may linearize at different points).
    pub fn range_scan(
        &mut self,
        structure: u16,
        lo: u64,
        hi: u64,
        window: u64,
    ) -> Result<Vec<(u64, u64)>, NetError> {
        self.send(&Request::RangeScan {
            structure,
            lo,
            hi,
            window,
        })?;
        self.flush()?;
        let mut pairs = Vec::new();
        loop {
            match self.recv()? {
                Response::ScanWindow(mut w) => pairs.append(&mut w),
                Response::ScanDone => return Ok(pairs),
                Response::Error(msg) => {
                    return Err(NetError::Malformed(format!("server error: {msg}")))
                }
                other => {
                    return Err(NetError::Malformed(format!(
                        "expected a scan-stream frame, got {other:?}"
                    )))
                }
            }
        }
    }
}
