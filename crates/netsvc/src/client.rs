//! The blocking client — and the resilient wrapper that survives a
//! faulty wire.
//!
//! [`Client`] is the raw framed connection with an explicit send/recv
//! split so callers can pipeline: issue several [`Client::send`]s,
//! [`Client::flush`] once, then [`Client::recv`] the replies in order —
//! the server guarantees reply order matches request order, and drains
//! the whole pipeline into one batch at its end (see the
//! [server docs](crate::server)). A [`Request::RangeScan`] answers
//! with multiple frames; [`Client::recv`] returns them one at a time
//! ([`Response::ScanWindow`]* then [`Response::ScanDone`]), or
//! [`Client::range_scan`] collects a whole stream. Dropping a `Client`
//! shuts the write half down first, so the server sees a clean EOF at
//! a frame boundary (a *drain*, not an error) on normal disconnect.
//!
//! [`ResilientClient`] wraps a `Client` with connect/read timeouts,
//! capped exponential backoff with jittered reconnect, and the
//! at-most-once mutation protocol:
//!
//! * **Idempotent reads** (`get`, `len`, `range_count`, `range_scan`,
//!   `stats`) retry transparently across reconnects — any failure just
//!   costs latency.
//! * **Mutations** (`insert`, `remove`) return a [`MutationOutcome`]:
//!   [`Applied`](MutationOutcome::Applied) with the server's answer,
//!   [`Retry`](MutationOutcome::Retry) when every attempt failed
//!   *before* the request could have reached the server (definitely
//!   not applied — safe to retry), or
//!   [`Unknown`](MutationOutcome::Unknown) the moment a failure is
//!   ambiguous (the request may or may not have executed). The client
//!   never re-sends a mutation whose first attempt got far enough to
//!   be ambiguous — that is what keeps "exactly once or say Unknown"
//!   true, and callers never double-apply.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::codec::{read_frame, write_frame, NetError, NetStats, Request, Response};

/// A blocking connection to a [`Server`](crate::Server).
#[derive(Debug)]
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    /// Reusable frame-payload scratch.
    buf: Vec<u8>,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connect with a connect timeout, then apply `read_timeout` to
    /// every future `recv`. A `recv` hitting the deadline surfaces
    /// `WouldBlock`/`TimedOut` as [`NetError::Io`].
    pub fn connect_timeout(
        addr: &SocketAddr,
        connect: Duration,
        read_timeout: Duration,
    ) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, connect)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Client::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: BufWriter::new(stream),
            reader,
            buf: Vec::new(),
        })
    }

    /// Queue one request (buffered; nothing hits the wire until
    /// [`flush`](Client::flush) or the buffer fills).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.buf.clear();
        req.encode(&mut self.buf);
        write_frame(&mut self.writer, &self.buf)
    }

    /// Push all queued requests to the wire.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Receive the next response frame, in request order.
    pub fn recv(&mut self) -> Result<Response, NetError> {
        self.buf.clear();
        read_frame(&mut self.reader, &mut self.buf)?;
        Response::decode(&self.buf).map_err(NetError::Malformed)
    }

    /// Send one request and wait for its (single-frame) response.
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        self.send(req)?;
        self.flush()?;
        self.recv()
    }

    /// Like [`call`](Client::call) but unwraps a `Value`, turning
    /// `Error` responses into [`NetError::Malformed`]-free errors.
    fn call_value(&mut self, req: &Request) -> Result<u64, NetError> {
        match self.call(req)? {
            Response::Value(v) => Ok(v),
            Response::Error(msg) => Err(NetError::Malformed(format!("server error: {msg}"))),
            other => Err(NetError::Malformed(format!(
                "expected a Value response, got {other:?}"
            ))),
        }
    }

    /// Occurrences of `key` in structure `structure`.
    pub fn get(&mut self, structure: u16, key: u64) -> Result<u64, NetError> {
        self.call_value(&Request::Get { structure, key })
    }

    /// Add `count` occurrences of `key`; returns the number added.
    pub fn insert(&mut self, structure: u16, key: u64, count: u64) -> Result<u64, NetError> {
        self.call_value(&Request::Insert {
            structure,
            key,
            count,
        })
    }

    /// Remove `count` occurrences of `key`; returns the number removed.
    pub fn remove(&mut self, structure: u16, key: u64, count: u64) -> Result<u64, NetError> {
        self.call_value(&Request::Remove {
            structure,
            key,
            count,
        })
    }

    /// Total occurrences across all keys.
    pub fn len(&mut self, structure: u16) -> Result<u64, NetError> {
        self.call_value(&Request::Len { structure })
    }

    /// Occurrences with keys in `[lo, hi]` (one consistent snapshot at
    /// the server).
    pub fn range_count(&mut self, structure: u16, lo: u64, hi: u64) -> Result<u64, NetError> {
        self.call_value(&Request::RangeCount { structure, lo, hi })
    }

    /// The server's global session/robustness counters.
    pub fn stats(&mut self) -> Result<NetStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(NetError::Malformed(format!(
                "expected a Stats response, got {other:?}"
            ))),
        }
    }

    /// Stream a windowed scan of `[lo, hi]` and collect every pair.
    /// Each window the server emitted was internally
    /// snapshot-consistent; the collected whole has per-window
    /// consistency (windows may linearize at different points). A
    /// `Busy` rejection (overloaded or draining server) surfaces as an
    /// error whose message starts with `server busy`; the connection
    /// itself stays usable.
    pub fn range_scan(
        &mut self,
        structure: u16,
        lo: u64,
        hi: u64,
        window: u64,
    ) -> Result<Vec<(u64, u64)>, NetError> {
        self.send(&Request::RangeScan {
            structure,
            lo,
            hi,
            window,
        })?;
        self.flush()?;
        let mut pairs = Vec::new();
        loop {
            match self.recv()? {
                Response::ScanWindow(mut w) => pairs.append(&mut w),
                Response::ScanDone => return Ok(pairs),
                Response::Busy if pairs.is_empty() => {
                    return Err(NetError::Malformed("server busy: scan rejected".into()))
                }
                Response::Error(msg) => {
                    return Err(NetError::Malformed(format!("server error: {msg}")))
                }
                other => {
                    return Err(NetError::Malformed(format!(
                        "expected a scan-stream frame, got {other:?}"
                    )))
                }
            }
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Push out anything buffered, then half-close: the server's
        // next read sees a FIN at a frame boundary — a clean drain —
        // instead of the RST a raw close can produce.
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().shutdown(Shutdown::Write);
    }
}

/// Backoff/retry schedule of a [`ResilientClient`]: attempt `k`
/// (0-based) sleeps a jittered `min(cap, base << k)` before retrying.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per operation before giving up (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: workloads::knobs::net_retry_max(),
            base: workloads::knobs::net_retry_base(),
            cap: workloads::knobs::net_retry_cap(),
        }
    }
}

/// Construction knobs of a [`ResilientClient`];
/// [`ClientConfig::default`] reads the `LLX_NET_*` environment.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connect timeout per attempt (`LLX_NET_TIMEOUT_MS`).
    pub connect_timeout: Duration,
    /// Read timeout per `recv` (`LLX_NET_TIMEOUT_MS`).
    pub read_timeout: Duration,
    /// Reconnect/retry schedule (`LLX_NET_RETRY_*`).
    pub retry: RetryPolicy,
    /// Seed of the private jitter RNG (deterministic backoff in
    /// replays).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        let t = workloads::knobs::net_timeout();
        ClientConfig {
            connect_timeout: t,
            read_timeout: t,
            retry: RetryPolicy::default(),
            seed: 0x5EED,
        }
    }
}

/// The fate of a mutation sent through a [`ResilientClient`].
///
/// The wire gives three distinguishable situations, and collapsing any
/// two of them is how double-applies happen:
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "ignoring a mutation outcome loses whether it applied"]
pub enum MutationOutcome {
    /// The server executed the mutation exactly once and answered this
    /// value (occurrences added/removed).
    Applied(u64),
    /// The mutation was definitely **not** applied: every attempt
    /// failed before the request could have reached the server
    /// (connect failure, `Busy` shed), or the server answered an
    /// `Error` (semantic rejection). The caller may retry freely.
    Retry,
    /// A failure happened after the request may have reached the
    /// server (send/flush/recv error mid-exchange). It may or may not
    /// have executed; retrying could double-apply. The caller must
    /// reconcile (e.g. read the key back) before re-issuing.
    Unknown,
}

/// Counters a [`ResilientClient`] keeps about its own struggle, for
/// harness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Successful (re)connects.
    pub connects: u64,
    /// Operation attempts that failed and were retried.
    pub retries: u64,
    /// `Busy` answers observed (accept shed or scan rejection).
    pub busy: u64,
    /// Mutations that ended [`MutationOutcome::Unknown`].
    pub unknown: u64,
}

/// A [`Client`] wrapped in timeouts, reconnect, and backoff — the
/// thing you point at a server that is being actively sabotaged.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Client>,
    /// xorshift64* state for backoff jitter.
    rng: u64,
    counters: ClientCounters,
}

impl ResilientClient {
    /// Build a client for `addr`; the first connection is made lazily
    /// by the first operation, so construction never blocks.
    pub fn new(addr: SocketAddr, config: ClientConfig) -> ResilientClient {
        let seed = config.seed | 1;
        ResilientClient {
            addr,
            config,
            conn: None,
            rng: seed,
            counters: ClientCounters::default(),
        }
    }

    /// What this client went through so far.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    fn jitter(&mut self) -> f64 {
        // xorshift64*: cheap, seedable, good enough for jitter.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Sleep the capped exponential backoff for 0-based `attempt`,
    /// jittered to `[1/2, 1]` of the nominal delay so a reconnect
    /// stampede decorrelates.
    fn backoff(&mut self, attempt: u32) {
        let nominal = self
            .config
            .retry
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.config.retry.cap);
        let j = 0.5 + 0.5 * self.jitter();
        std::thread::sleep(nominal.mul_f64(j));
    }

    /// The live connection, dialing (once) if there is none. A `Busy`
    /// shed at accept shows up as the subsequent call failing, not
    /// here.
    fn ensure_conn(&mut self) -> io::Result<&mut Client> {
        if self.conn.is_none() {
            let c = Client::connect_timeout(
                &self.addr,
                self.config.connect_timeout,
                self.config.read_timeout,
            )?;
            self.counters.connects += 1;
            self.conn = Some(c);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Run one idempotent request to a `Value`, retrying transparently
    /// across timeouts, dead connections, and `Busy` sheds.
    fn retry_value(&mut self, req: &Request) -> Result<u64, NetError> {
        let mut last = NetError::Closed;
        for attempt in 0..self.config.retry.max_attempts {
            if attempt > 0 {
                self.counters.retries += 1;
                self.backoff(attempt - 1);
            }
            let client = match self.ensure_conn() {
                Ok(c) => c,
                Err(e) => {
                    last = NetError::Io(e);
                    continue;
                }
            };
            match client.call(req) {
                Ok(Response::Value(v)) => return Ok(v),
                Ok(Response::Busy) => {
                    // Definite refusal; the server also closed us if
                    // this was an accept-time shed.
                    self.counters.busy += 1;
                    self.conn = None;
                    last = NetError::Malformed("server busy".into());
                }
                Ok(Response::Error(msg)) => {
                    // Answered and rejected — a semantic error retries
                    // will not fix.
                    return Err(NetError::Malformed(format!("server error: {msg}")));
                }
                Ok(other) => {
                    self.conn = None;
                    last = NetError::Malformed(format!("expected a Value, got {other:?}"));
                }
                Err(e) => {
                    self.conn = None;
                    last = e;
                }
            }
        }
        Err(last)
    }

    /// Occurrences of `key` (idempotent: retries transparently).
    pub fn get(&mut self, structure: u16, key: u64) -> Result<u64, NetError> {
        self.retry_value(&Request::Get { structure, key })
    }

    /// Total occurrences (idempotent: retries transparently).
    pub fn len(&mut self, structure: u16) -> Result<u64, NetError> {
        self.retry_value(&Request::Len { structure })
    }

    /// Range total (idempotent: retries transparently).
    pub fn range_count(&mut self, structure: u16, lo: u64, hi: u64) -> Result<u64, NetError> {
        self.retry_value(&Request::RangeCount { structure, lo, hi })
    }

    /// Server counters (idempotent: retries transparently).
    pub fn stats(&mut self) -> Result<NetStats, NetError> {
        let mut last = NetError::Closed;
        for attempt in 0..self.config.retry.max_attempts {
            if attempt > 0 {
                self.counters.retries += 1;
                self.backoff(attempt - 1);
            }
            match self.ensure_conn() {
                Ok(c) => match c.stats() {
                    Ok(s) => return Ok(s),
                    Err(e) => {
                        self.conn = None;
                        last = e;
                    }
                },
                Err(e) => last = NetError::Io(e),
            }
        }
        Err(last)
    }

    /// Collect a windowed scan, restarting the whole stream on failure
    /// (idempotent) and backing off on `Busy` rejections.
    pub fn range_scan(
        &mut self,
        structure: u16,
        lo: u64,
        hi: u64,
        window: u64,
    ) -> Result<Vec<(u64, u64)>, NetError> {
        let mut last = NetError::Closed;
        for attempt in 0..self.config.retry.max_attempts {
            if attempt > 0 {
                self.counters.retries += 1;
                self.backoff(attempt - 1);
            }
            let client = match self.ensure_conn() {
                Ok(c) => c,
                Err(e) => {
                    last = NetError::Io(e);
                    continue;
                }
            };
            match client.range_scan(structure, lo, hi, window) {
                Ok(pairs) => return Ok(pairs),
                Err(NetError::Malformed(m)) if m.starts_with("server busy") => {
                    // The connection survives a scan rejection; only
                    // the stream was refused.
                    self.counters.busy += 1;
                    last = NetError::Malformed(m);
                }
                Err(e) => {
                    self.conn = None;
                    last = e;
                }
            }
        }
        Err(last)
    }

    /// Add `count` occurrences of `key`, at most once.
    pub fn insert(&mut self, structure: u16, key: u64, count: u64) -> MutationOutcome {
        self.mutate(&Request::Insert {
            structure,
            key,
            count,
        })
    }

    /// Remove `count` occurrences of `key`, at most once.
    pub fn remove(&mut self, structure: u16, key: u64, count: u64) -> MutationOutcome {
        self.mutate(&Request::Remove {
            structure,
            key,
            count,
        })
    }

    /// The at-most-once mutation protocol: retry only failures that
    /// are provably pre-delivery (connect errors, `Busy` sheds); the
    /// first ambiguous failure ends the operation as `Unknown`.
    fn mutate(&mut self, req: &Request) -> MutationOutcome {
        for attempt in 0..self.config.retry.max_attempts {
            if attempt > 0 {
                self.counters.retries += 1;
                self.backoff(attempt - 1);
            }
            let client = match self.ensure_conn() {
                Ok(c) => c,
                // Never connected: the request cannot have left this
                // process. Definite — keep trying.
                Err(_) => continue,
            };
            match client.call(req) {
                Ok(Response::Value(v)) => return MutationOutcome::Applied(v),
                Ok(Response::Busy) => {
                    // The server refused without executing. Definite —
                    // reconnect and retry.
                    self.counters.busy += 1;
                    self.conn = None;
                }
                Ok(Response::Error(_)) => {
                    // Answered and rejected: executed-zero-times is
                    // certain, and retrying the same request would be
                    // rejected again.
                    return MutationOutcome::Retry;
                }
                Ok(_) | Err(_) => {
                    // An Error/garbled reply or any I/O failure after
                    // the send began: the server may have executed the
                    // op and the loss may be confined to the reply.
                    // Retrying could double-apply — stop here.
                    self.conn = None;
                    self.counters.unknown += 1;
                    return MutationOutcome::Unknown;
                }
            }
        }
        MutationOutcome::Retry
    }
}
