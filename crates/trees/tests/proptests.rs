//! Property tests: all three search structures agree with a sequential
//! model under arbitrary operation sequences; the chromatic tree is
//! balanced and the Patricia trie structurally valid after every
//! operation.

use std::collections::BTreeMap;

use proptest::prelude::*;
use trees::{Bst, ChromaticTree, PatriciaTrie};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16),
    Remove(u16),
    Get(u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..400u16).prop_map(Op::Insert),
            (0..400u16).prop_map(Op::Remove),
            (0..400u16).prop_map(Op::Get),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bst_agrees_with_model(ops in ops()) {
        let t: Bst<u16, u16> = Bst::new();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    let got = t.insert(k, k.wrapping_mul(3));
                    let want = !model.contains_key(&k);
                    prop_assert_eq!(got, want);
                    model.entry(k).or_insert(k.wrapping_mul(3));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(t.remove(k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(t.get(k), model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(t.to_vec(), model.into_iter().collect::<Vec<_>>());
        t.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn chromatic_agrees_with_model_and_balances(ops in ops()) {
        let t: ChromaticTree<u16, u16> = ChromaticTree::new();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    let got = t.insert(k, k.wrapping_mul(3));
                    let want = !model.contains_key(&k);
                    prop_assert_eq!(got, want);
                    model.entry(k).or_insert(k.wrapping_mul(3));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(t.remove(k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(t.get(k), model.get(&k).copied());
                }
            }
            // Single-threaded execution is always quiescent: the tree
            // must be violation-free with equal path sums continuously.
            t.check_balanced().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(t.to_vec(), model.into_iter().collect::<Vec<_>>());
        t.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn patricia_agrees_with_model_and_stays_valid(ops in ops()) {
        let t: PatriciaTrie<u16> = PatriciaTrie::new();
        let mut model: BTreeMap<u64, u16> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    let got = t.insert(k as u64, k.wrapping_mul(3));
                    let want = !model.contains_key(&(k as u64));
                    prop_assert_eq!(got, want);
                    model.entry(k as u64).or_insert(k.wrapping_mul(3));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(t.remove(k as u64), model.remove(&(k as u64)));
                }
                Op::Get(k) => {
                    prop_assert_eq!(t.get(k as u64), model.get(&(k as u64)).copied());
                }
            }
            // Branch bits strictly decreasing, leaves routed by their
            // prefixes, no reachable finalized node — after every op.
            t.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(t.len(), model.len());
        prop_assert_eq!(t.to_vec(), model.into_iter().collect::<Vec<_>>());
        prop_assert!(t.depth() <= 17, "depth bounded by key width");
    }
}
