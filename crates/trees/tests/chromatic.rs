//! Chromatic tree validation: sequential balance, model equivalence,
//! and concurrent stress with post-quiescence balance checks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use trees::ChromaticTree;

#[test]
fn empty_tree_is_balanced() {
    let t: ChromaticTree<u64, u64> = ChromaticTree::new();
    assert!(t.is_empty());
    t.check_invariants().unwrap();
    t.check_balanced().unwrap();
}

#[test]
fn sequential_ascending_inserts_stay_balanced() {
    // The adversarial insertion order for an unbalanced BST.
    let t: ChromaticTree<u64, u64> = ChromaticTree::new();
    for k in 0..1024u64 {
        assert!(t.insert(k, k));
        t.check_invariants().unwrap();
    }
    t.check_balanced().unwrap();
    // Red-black bound: height <= 2*log2(n+1) + sentinel slack.
    let h = t.height();
    assert!(
        h <= 2 * 11 + 3,
        "height {h} exceeds the red-black bound for 1024 keys"
    );
    assert_eq!(t.len(), 1024);
}

#[test]
fn sequential_descending_inserts_stay_balanced() {
    let t: ChromaticTree<u64, u64> = ChromaticTree::new();
    for k in (0..1024u64).rev() {
        assert!(t.insert(k, k));
    }
    t.check_balanced().unwrap();
    let h = t.height();
    assert!(h <= 2 * 11 + 3, "height {h} too large");
}

#[test]
fn sequential_deletes_stay_balanced() {
    let t: ChromaticTree<u64, u64> = ChromaticTree::new();
    for k in 0..512u64 {
        t.insert(k, k);
    }
    // Delete every other key, then a contiguous run.
    for k in (0..512u64).step_by(2) {
        assert_eq!(t.remove(k), Some(k));
        t.check_invariants().unwrap();
    }
    t.check_balanced().unwrap();
    for k in (1..512u64).step_by(2) {
        assert_eq!(t.remove(k), Some(k));
    }
    assert!(t.is_empty());
    t.check_balanced().unwrap();
}

#[test]
fn mixed_random_ops_match_model_and_stay_balanced() {
    use std::collections::BTreeMap;
    let t: ChromaticTree<u64, u64> = ChromaticTree::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng: u64 = 0x12345678;
    for i in 0..20_000u64 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let k = rng % 300;
        if rng & 0x1000 == 0 || model.len() < 10 {
            let inserted = t.insert(k, i);
            assert_eq!(inserted, !model.contains_key(&k), "insert({k})");
            model.entry(k).or_insert(i);
        } else {
            let removed = t.remove(k);
            assert_eq!(removed, model.remove(&k), "remove({k})");
        }
        if i % 2048 == 0 {
            t.check_invariants().unwrap();
            t.check_balanced().unwrap();
        }
    }
    t.check_balanced().unwrap();
    let contents: Vec<(u64, u64)> = t.to_vec();
    let expected: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(contents, expected);
}

#[test]
fn concurrent_mixed_ops_balanced_after_quiescence() {
    const THREADS: usize = 8;
    const KEYS: u64 = 256;
    let t: Arc<ChromaticTree<u64, u64>> = Arc::new(ChromaticTree::new());
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for tid in 0..THREADS as u64 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = (tid + 1).wrapping_mul(0x9E3779B97F4A7C15);
            let mut net = 0i64;
            while !stop.load(Ordering::Relaxed) {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let k = rng % KEYS;
                match (rng >> 20) % 3 {
                    0 => {
                        if t.insert(k, k) {
                            net += 1;
                        }
                    }
                    1 => {
                        if t.remove(k).is_some() {
                            net -= 1;
                        }
                    }
                    _ => {
                        let _ = t.get(k);
                    }
                }
            }
            net
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(700));
    stop.store(true, Ordering::Relaxed);
    let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    t.check_invariants().unwrap();
    t.check_balanced().expect("tree balanced after quiescence");
    assert_eq!(t.len() as i64, net);
}

#[test]
fn concurrent_disjoint_inserts_then_full_scan() {
    const THREADS: u64 = 4;
    const PER: u64 = 500;
    let t: Arc<ChromaticTree<u64, u64>> = Arc::new(ChromaticTree::new());
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let t = Arc::clone(&t);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER {
                assert!(t.insert(tid + THREADS * i, i));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    t.check_invariants().unwrap();
    t.check_balanced().unwrap();
    assert_eq!(t.len() as u64, THREADS * PER);
    let keys: Vec<u64> = t.fold(Vec::new(), |mut v, k, _| {
        v.push(k);
        v
    });
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted iteration");
    // Height stays logarithmic.
    let h = t.height();
    assert!(h <= 2 * 11 + 3, "height {h} for {} keys", THREADS * PER);
}

#[test]
fn values_survive_rebalancing() {
    let t: ChromaticTree<u64, String> = ChromaticTree::new();
    for k in 0..200u64 {
        t.insert(k, format!("v{k}"));
    }
    for k in 0..200u64 {
        assert_eq!(t.get(k), Some(format!("v{k}")), "key {k}");
    }
    for k in (0..200u64).step_by(3) {
        assert_eq!(t.remove(k), Some(format!("v{k}")));
    }
    for k in 0..200u64 {
        if k % 3 == 0 {
            assert_eq!(t.get(k), None);
        } else {
            assert_eq!(t.get(k), Some(format!("v{k}")));
        }
    }
    t.check_balanced().unwrap();
}

#[test]
fn first_and_last_key_value() {
    let t: ChromaticTree<u64, u64> = ChromaticTree::new();
    assert_eq!(t.first_key_value(), None);
    assert_eq!(t.last_key_value(), None);
    for k in [50u64, 10, 90, 30, 70] {
        t.insert(k, k * 2);
    }
    assert_eq!(t.first_key_value(), Some((10, 20)));
    assert_eq!(t.last_key_value(), Some((90, 180)));
    t.remove(10);
    t.remove(90);
    assert_eq!(t.first_key_value(), Some((30, 60)));
    assert_eq!(t.last_key_value(), Some((70, 140)));
    t.remove(30);
    t.remove(50);
    t.remove(70);
    assert_eq!(t.first_key_value(), None);
    assert_eq!(t.last_key_value(), None);
}
