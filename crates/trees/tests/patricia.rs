//! Patricia trie validation: model equivalence, structural invariants,
//! depth bounds, and concurrent stress.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use trees::PatriciaTrie;

#[test]
fn empty_trie() {
    let t: PatriciaTrie<u64> = PatriciaTrie::new();
    assert!(t.is_empty());
    assert_eq!(t.get(0), None);
    assert_eq!(t.remove(0), None);
    t.check_invariants().unwrap();
}

#[test]
fn single_key_lifecycle() {
    let t = PatriciaTrie::new();
    assert!(t.insert(42, "x"));
    assert!(!t.insert(42, "y"));
    assert_eq!(t.get(42), Some("x"));
    t.check_invariants().unwrap();
    assert_eq!(t.remove(42), Some("x"));
    assert!(t.is_empty());
    t.check_invariants().unwrap();
    // Reusable after emptying (fresh sentinel).
    assert!(t.insert(7, "z"));
    assert_eq!(t.get(7), Some("z"));
    t.check_invariants().unwrap();
}

#[test]
fn adversarial_keys_keep_bounded_depth() {
    // Sequential keys 0..n give a trie of depth <= log2(n) + 1; compare
    // with the unbalanced BST where they give depth n.
    let t = PatriciaTrie::new();
    let n = 1024u64;
    for k in 0..n {
        assert!(t.insert(k, k));
    }
    t.check_invariants().unwrap();
    assert_eq!(t.len() as u64, n);
    assert!(t.depth() <= 11, "depth {} too large", t.depth());
    // Extreme bit patterns.
    let t2 = PatriciaTrie::new();
    for k in [0u64, u64::MAX, 1 << 63, 1, (1 << 63) | 1] {
        assert!(t2.insert(k, k));
    }
    t2.check_invariants().unwrap();
    assert_eq!(
        t2.to_vec().iter().map(|&(k, _)| k).collect::<Vec<_>>(),
        vec![0, 1, 1 << 63, (1 << 63) | 1, u64::MAX]
    );
    assert!(t2.depth() <= 64);
}

#[test]
fn ordered_iteration() {
    let t = PatriciaTrie::new();
    let keys = [907u64, 3, 555, 18, 0, 77777, 42];
    for &k in &keys {
        t.insert(k, k * 2);
    }
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    assert_eq!(
        t.to_vec(),
        sorted.iter().map(|&k| (k, k * 2)).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn agrees_with_model(ops in proptest::collection::vec(
        (0..3u8, 0..64u64), 1..300)) {
        let t: PatriciaTrie<u64> = PatriciaTrie::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            // Spread keys over the full bit range to exercise splicing
            // at every level.
            let key = key.wrapping_mul(0x9E3779B97F4A7C15);
            match op {
                0 => {
                    let got = t.insert(key, key);
                    prop_assert_eq!(got, !model.contains_key(&key));
                    model.entry(key).or_insert(key);
                }
                1 => {
                    prop_assert_eq!(t.remove(key), model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(t.get(key), model.get(&key).copied());
                }
            }
        }
        prop_assert_eq!(t.to_vec(), model.into_iter().collect::<Vec<_>>());
        t.check_invariants().map_err(TestCaseError::fail)?;
    }
}

#[test]
fn concurrent_mixed_ops_conserve_membership() {
    const THREADS: u64 = 8;
    let t: Arc<PatriciaTrie<u64>> = Arc::new(PatriciaTrie::new());
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = (tid + 1).wrapping_mul(0x2545F4914F6CDD1D);
            let mut net = 0i64;
            while !stop.load(Ordering::Relaxed) {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                // Scatter keys across bit positions.
                let key = (rng % 128).wrapping_mul(0x9E3779B97F4A7C15);
                match (rng >> 24) % 3 {
                    0 => {
                        if t.insert(key, key) {
                            net += 1;
                        }
                    }
                    1 => {
                        if t.remove(key).is_some() {
                            net -= 1;
                        }
                    }
                    _ => {
                        if let Some(v) = t.get(key) {
                            assert_eq!(v, key, "value integrity");
                        }
                    }
                }
            }
            net
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    t.check_invariants().unwrap();
    assert_eq!(t.len() as i64, net);
}

#[test]
fn concurrent_disjoint_bit_regions() {
    // Each thread owns a distinct high-bit region: no conflicts expected,
    // every op must succeed first try eventually.
    const THREADS: u64 = 4;
    let t: Arc<PatriciaTrie<u64>> = Arc::new(PatriciaTrie::new());
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let t = Arc::clone(&t);
        handles.push(std::thread::spawn(move || {
            let base = tid << 60;
            for i in 0..400u64 {
                assert!(t.insert(base | i, i));
            }
            for i in (0..400u64).step_by(2) {
                assert_eq!(t.remove(base | i), Some(i));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    t.check_invariants().unwrap();
    assert_eq!(t.len() as u64, THREADS * 200);
}

#[test]
fn prefix_queries() {
    let t = PatriciaTrie::new();
    // Keys grouped by their top byte: three under 0x11, two under 0x22.
    let keys = [
        0x1100_0000_0000_0000u64,
        0x1101_0000_0000_0000,
        0x11FF_0000_0000_0001,
        0x2200_0000_0000_0000,
        0x2210_0000_0000_0002,
    ];
    for &key in &keys {
        t.insert(key, key);
    }
    let hits = t.keys_with_prefix(0x11u64 << 56, 8);
    assert_eq!(hits.len(), 3, "three keys under top byte 0x11");
    assert!(hits.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
    assert_eq!(t.keys_with_prefix(0x22u64 << 56, 8).len(), 2);
    assert!(t.keys_with_prefix(0x33u64 << 56, 8).is_empty());
    // Longer prefixes narrow the result.
    assert_eq!(t.keys_with_prefix(0x1100u64 << 48, 16).len(), 1);
    // Full-width prefix behaves like get.
    assert_eq!(t.keys_with_prefix(keys[2], 64).len(), 1);
    assert!(t.keys_with_prefix(keys[2] ^ 1, 64).is_empty());
}

#[test]
fn prefix_query_on_empty_and_single() {
    let t: PatriciaTrie<u64> = PatriciaTrie::new();
    assert!(t.keys_with_prefix(0, 8).is_empty());
    t.insert(0xAB00_0000_0000_0000, 1);
    assert_eq!(t.keys_with_prefix(0xAB00_0000_0000_0000, 8).len(), 1);
    assert!(t.keys_with_prefix(0xCD00_0000_0000_0000, 8).is_empty());
}

#[test]
#[should_panic(expected = "prefix length")]
fn prefix_zero_bits_panics() {
    let t: PatriciaTrie<u64> = PatriciaTrie::new();
    t.keys_with_prefix(0, 0);
}
