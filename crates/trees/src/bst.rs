//! Non-blocking leaf-oriented binary search tree on LLX/SCX.
//!
//! The unbalanced dictionary of the paper's §6 follow-up (Brown, Ellen &
//! Ruppert, PPoPP 2014, §4): every update is one SCX over a constant-size
//! neighborhood.
//!
//! * `Insert(k)` replaces leaf `l` with a new internal node holding the
//!   new leaf and a fresh copy of `l` — `SCX(V=⟨p, l⟩, R=⟨l⟩, p.child, new)`.
//! * `Delete(k)` unlinks leaf `l` and its parent `p`, promoting the
//!   sibling — `SCX(V=⟨gp, p, l⟩, R=⟨p, l⟩, gp.child, s)`. No copy of the
//!   sibling is needed: a node is only ever stored into a child field it
//!   has never inhabited, so the paper's no-ABA constraint (§4.1) holds.

use std::fmt;

use llx_scx::{FieldId, Guard, ScxRequest};

use crate::node::{dir_of, is_leaf, Node, NodeInfo, TreeDomain, TreeKey, LEFT, RIGHT};

/// The result of the leaf search: the leaf and up to two ancestors.
pub(crate) struct SearchResult<'g, K, V> {
    pub(crate) gp: Option<&'g Node<K, V>>,
    pub(crate) p: &'g Node<K, V>,
    pub(crate) l: &'g Node<K, V>,
}

/// A linearizable, non-blocking set/map on an external BST (paper §6
/// technique, unbalanced).
///
/// Keys must be `Copy + Ord`; values `Clone`. `insert` is
/// insert-if-absent; `remove` deletes and returns the stored value.
pub struct Bst<K, V> {
    pub(crate) domain: TreeDomain<K, V>,
    pub(crate) root: *const Node<K, V>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for Bst<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Bst<K, V> {}

impl<K: Copy + Ord, V: Clone> Default for Bst<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

pub(crate) fn new_root<K, V>(domain: &TreeDomain<K, V>) -> *const Node<K, V> {
    let left = domain.alloc(
        NodeInfo {
            key: TreeKey::Inf1,
            weight: 1,
            value: None,
        },
        [llx_scx::NULL, llx_scx::NULL],
    );
    let right = domain.alloc(
        NodeInfo {
            key: TreeKey::Inf2,
            weight: 1,
            value: None,
        },
        [llx_scx::NULL, llx_scx::NULL],
    );
    domain.alloc(
        NodeInfo {
            key: TreeKey::Inf2,
            weight: 1,
            value: None,
        },
        [llx_scx::pack_ptr(left), llx_scx::pack_ptr(right)],
    )
}

/// Search from `root` to the leaf for `key`, recording parent and
/// grandparent (Ellen et al. search; plain reads only, linearized via
/// the paper's Proposition 2).
pub(crate) fn search_leaf<'g, K: Copy + Ord, V>(
    domain: &TreeDomain<K, V>,
    root: *const Node<K, V>,
    key: &TreeKey<K>,
    guard: &'g Guard,
) -> SearchResult<'g, K, V> {
    // SAFETY: the root entry point is never retired; children are
    // protected by `guard`.
    let mut gp: Option<&'g Node<K, V>> = None;
    let mut p: &'g Node<K, V> = unsafe { &*root };
    let mut l: &'g Node<K, V> = unsafe { domain.deref(p.read(dir_of(key, p)), guard) };
    while !is_leaf(l) {
        gp = Some(p);
        p = l;
        l = unsafe { domain.deref(l.read(dir_of(key, l)), guard) };
    }
    SearchResult { gp, p, l }
}

impl<K: Copy + Ord, V: Clone> Bst<K, V> {
    /// An empty tree: `root(∞₂) → {leaf(∞₁), leaf(∞₂)}`.
    pub fn new() -> Self {
        let domain = TreeDomain::new();
        let root = new_root(&domain);
        Bst { domain, root }
    }

    /// The value associated with `key`, if present.
    pub fn get(&self, key: K) -> Option<V> {
        let guard = llx_scx::pin();
        let k = TreeKey::Key(key);
        let res = search_leaf(&self.domain, self.root, &k, &guard);
        let info = res.l.immutable();
        if info.key == k {
            info.value.clone()
        } else {
            None
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value` if `key` is absent; returns whether it
    /// inserted.
    pub fn insert(&self, key: K, value: V) -> bool {
        let k = TreeKey::Key(key);
        loop {
            let guard = llx_scx::pin();
            let res = search_leaf(&self.domain, self.root, &k, &guard);
            let l_info = res.l.immutable();
            if l_info.key == k {
                return false;
            }
            let (Some(sp), Some(sl)) = (
                self.domain.llx(res.p, &guard).snapshot(),
                self.domain.llx(res.l, &guard).snapshot(),
            ) else {
                continue;
            };
            // The leaf must still be p's child on the search side.
            let d = dir_of(&k, res.p);
            if sp.value(d) != llx_scx::pack_ptr(res.l as *const Node<K, V>) {
                continue;
            }
            // Build: internal(max-ish key){leaf(k), copy of l} ordered.
            let new_leaf = self.domain.alloc(
                NodeInfo {
                    key: k,
                    weight: 1,
                    value: Some(value.clone()),
                },
                [llx_scx::NULL, llx_scx::NULL],
            );
            let l_copy = self.domain.alloc(
                NodeInfo {
                    key: l_info.key,
                    weight: 1,
                    value: l_info.value.clone(),
                },
                [llx_scx::NULL, llx_scx::NULL],
            );
            let (lc, rc, ikey) = if k < l_info.key {
                (new_leaf, l_copy, l_info.key)
            } else {
                (l_copy, new_leaf, k)
            };
            let internal = self.domain.alloc(
                NodeInfo {
                    key: ikey,
                    weight: 1,
                    value: None,
                },
                [llx_scx::pack_ptr(lc), llx_scx::pack_ptr(rc)],
            );
            if self.domain.scx(
                ScxRequest::new(&[sp, sl], FieldId::new(0, d), llx_scx::pack_ptr(internal))
                    .finalize(1),
                &guard,
            ) {
                // SAFETY: l was unlinked by the committed SCX.
                unsafe { self.domain.retire(res.l as *const Node<K, V>, &guard) };
                return true;
            }
            // SAFETY: never published.
            unsafe {
                self.domain.dealloc(internal);
                self.domain.dealloc(new_leaf);
                self.domain.dealloc(l_copy);
            }
        }
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&self, key: K) -> Option<V> {
        let k = TreeKey::Key(key);
        loop {
            let guard = llx_scx::pin();
            let res = search_leaf(&self.domain, self.root, &k, &guard);
            if res.l.immutable().key != k {
                return None;
            }
            let Some(gp) = res.gp else {
                // User keys always have a grandparent (sentinel layout).
                unreachable!("user-key leaf at depth 1");
            };
            let (Some(sgp), Some(sp), Some(sl)) = (
                self.domain.llx(gp, &guard).snapshot(),
                self.domain.llx(res.p, &guard).snapshot(),
                self.domain.llx(res.l, &guard).snapshot(),
            ) else {
                continue;
            };
            // Validate links from the snapshots.
            let gd = dir_of(&k, gp);
            let pd = dir_of(&k, res.p);
            if sgp.value(gd) != llx_scx::pack_ptr(res.p as *const Node<K, V>)
                || sp.value(pd) != llx_scx::pack_ptr(res.l as *const Node<K, V>)
            {
                continue;
            }
            // Promote the sibling.
            let sibling_word = sp.value(1 - pd);
            let value = res.l.immutable().value.clone();
            if self.domain.scx(
                ScxRequest::new(&[sgp, sp, sl], FieldId::new(0, gd), sibling_word)
                    .finalize(1)
                    .finalize(2),
                &guard,
            ) {
                // SAFETY: both unlinked by the committed SCX.
                unsafe {
                    self.domain.retire(res.p as *const Node<K, V>, &guard);
                    self.domain.retire(res.l as *const Node<K, V>, &guard);
                }
                return value;
            }
        }
    }

    /// The smallest user key and its value (traversal semantics).
    pub fn first_key_value(&self) -> Option<(K, V)> {
        let guard = llx_scx::pin();
        crate::node::extreme_leaf(&self.domain, self.root, LEFT, &guard)
    }

    /// The largest user key and its value (traversal semantics).
    pub fn last_key_value(&self) -> Option<(K, V)> {
        let guard = llx_scx::pin();
        crate::node::extreme_leaf(&self.domain, self.root, RIGHT, &guard)
    }

    /// Number of user keys (traversal semantics, not a snapshot).
    pub fn len(&self) -> usize {
        self.fold(0, |acc, _, _| acc + 1)
    }

    /// True if a traversal finds no user keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold over `(key, value)` pairs in ascending key order (traversal
    /// semantics).
    pub fn fold<A, F: FnMut(A, K, &V) -> A>(&self, init: A, mut f: F) -> A {
        let guard = llx_scx::pin();
        let mut acc = init;
        let mut stack: Vec<&Node<K, V>> = vec![unsafe { &*self.root }];
        while let Some(n) = stack.pop() {
            if is_leaf(n) {
                let info = n.immutable();
                if let (TreeKey::Key(k), Some(v)) = (&info.key, &info.value) {
                    acc = f(acc, *k, v);
                }
            } else {
                // Right first so lefts pop first (ascending order).
                stack.push(unsafe { self.domain.deref(n.read(RIGHT), &guard) });
                stack.push(unsafe { self.domain.deref(n.read(LEFT), &guard) });
            }
        }
        acc
    }

    /// Fold over the `(key, value)` pairs with keys in the inclusive
    /// range `[lo, hi]`, ascending, over a **consistent snapshot**: an
    /// in-order walk that LLXs every visited node, prunes subtrees
    /// disjoint from the range, and validates the visited set with one
    /// VLX, retrying on conflict (see `scan` module docs). `lo > hi`
    /// folds nothing.
    pub fn fold_range<A, F: FnMut(A, K, &V) -> A>(&self, lo: K, hi: K, init: A, f: F) -> A {
        crate::scan::fold_range_snapshot(&self.domain, self.root, lo, hi, init, f)
    }

    /// Number of keys in `[lo, hi]` at a single linearization point.
    /// See [`Bst::fold_range`].
    pub fn range_count(&self, lo: K, hi: K) -> u64 {
        self.fold_range(lo, hi, 0u64, |acc, _, _| acc + 1)
    }

    /// One bounded-window snapshot attempt: collect up to `max_keys`
    /// keys of `[from, hi]` (ascending) and validate just the visited
    /// nodes with one VLX. On success the returned
    /// [`ScanWindow`](crate::ScanWindow) is the exact contents of
    /// `[from, window.covered_hi]` at the VLX's linearization point;
    /// `None` means a conflicting update was detected — the caller
    /// decides whether to retry (this is the primitive the `conc-set`
    /// scan cursor's bounded-retry windows are built on).
    ///
    /// # Panics
    ///
    /// Panics if `max_keys == 0`.
    pub fn try_scan_window(
        &self,
        from: K,
        hi: K,
        max_keys: usize,
    ) -> Option<crate::ScanWindow<K, V>> {
        crate::scan::scan_window_bstlike(&self.domain, self.root, from, hi, max_keys)
    }

    /// Collect `(key, value)` pairs in ascending key order (traversal
    /// semantics).
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.fold(Vec::new(), |mut v, k, val| {
            v.push((k, val.clone()));
            v
        })
    }

    /// Structural validation for tests: BST order, leaf-orientation,
    /// sentinel placement, no reachable finalized nodes.
    pub fn check_invariants(&self) -> Result<(), String> {
        crate::validate::check_structure(&self.domain, self.root, false)
    }

    /// Height of the tree (edges from root to deepest leaf).
    pub fn height(&self) -> usize {
        crate::validate::height(&self.domain, self.root)
    }
}

impl<K, V> Drop for Bst<K, V> {
    fn drop(&mut self) {
        // Exclusive access: free every reachable node.
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            // SAFETY: owned, exclusive.
            let node = unsafe { Box::from_raw(p as *mut Node<K, V>) };
            for f in [LEFT, RIGHT] {
                let w = node.read(f);
                if w != llx_scx::NULL {
                    stack.push(w as usize as *const Node<K, V>);
                }
            }
        }
    }
}

impl<K: Copy + Ord + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for Bst<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.to_vec()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: Bst<u64, u64> = Bst::new();
        assert!(t.is_empty());
        assert_eq!(t.get(5), None);
        assert_eq!(t.remove(5), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_remove() {
        let t: Bst<u64, &str> = Bst::new();
        assert!(t.insert(5, "five"));
        assert!(t.insert(3, "three"));
        assert!(t.insert(8, "eight"));
        assert!(!t.insert(5, "dup"), "insert-if-absent");
        assert_eq!(t.get(5), Some("five"));
        assert_eq!(t.get(3), Some("three"));
        assert_eq!(t.get(9), None);
        assert_eq!(t.to_vec(), vec![(3, "three"), (5, "five"), (8, "eight")]);
        t.check_invariants().unwrap();
        assert_eq!(t.remove(5), Some("five"));
        assert_eq!(t.remove(5), None);
        assert_eq!(t.to_vec(), vec![(3, "three"), (8, "eight")]);
        t.check_invariants().unwrap();
        assert_eq!(t.remove(3), Some("three"));
        assert_eq!(t.remove(8), Some("eight"));
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn many_keys_sorted_iteration() {
        let t: Bst<u64, u64> = Bst::new();
        let mut keys: Vec<u64> = (0..200).map(|i| (i * 37) % 1000).collect();
        for &k in &keys {
            t.insert(k, k * 2);
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            t.to_vec(),
            keys.iter().map(|&k| (k, k * 2)).collect::<Vec<_>>()
        );
        t.check_invariants().unwrap();
        for &k in &keys {
            assert_eq!(t.remove(k), Some(k * 2));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        use std::sync::Arc;
        let t: Arc<Bst<u64, u64>> = Arc::new(Bst::new());
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    let k = tid * 1000 + i;
                    assert!(t.insert(k, k));
                }
                for i in 0..300u64 {
                    let k = tid * 1000 + i;
                    assert_eq!(t.get(k), Some(k));
                }
                for i in (0..300u64).step_by(2) {
                    let k = tid * 1000 + i;
                    assert_eq!(t.remove(k), Some(k));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 4 * 150);
    }

    #[test]
    fn concurrent_same_key_contention() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let t: Arc<Bst<u64, u64>> = Arc::new(Bst::new());
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                let mut rng = (tid + 1).wrapping_mul(0x9E3779B97F4A7C15);
                while !stop.load(Ordering::Relaxed) {
                    // ord: test stop flag; no data ordering
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let k = rng % 8;
                    if rng & 0x100 == 0 {
                        if t.insert(k, k) {
                            net += 1;
                        }
                    } else if t.remove(k).is_some() {
                        net -= 1;
                    }
                }
                net
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed); // ord: test stop flag; no data ordering
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        t.check_invariants().unwrap();
        assert_eq!(t.len() as i64, net);
    }
}

#[cfg(test)]
mod extreme_tests {
    use super::*;

    #[test]
    fn first_and_last_key_value() {
        let t: Bst<u64, &str> = Bst::new();
        assert_eq!(t.first_key_value(), None);
        assert_eq!(t.last_key_value(), None);
        t.insert(5, "five");
        assert_eq!(t.first_key_value(), Some((5, "five")));
        assert_eq!(t.last_key_value(), Some((5, "five")));
        t.insert(2, "two");
        t.insert(9, "nine");
        assert_eq!(t.first_key_value(), Some((2, "two")));
        assert_eq!(t.last_key_value(), Some((9, "nine")));
        t.remove(9);
        assert_eq!(t.last_key_value(), Some((5, "five")));
    }
}
