//! Non-blocking trees built from LLX/SCX.
//!
//! The paper's §6 points at its companion technique paper (Brown, Ellen
//! & Ruppert, "A general technique for non-blocking trees", PPoPP 2014)
//! for the headline application of LLX/SCX: provably correct,
//! non-blocking *down-trees* whose updates each replace a constant-size
//! neighborhood with one SCX. This crate implements both data structures
//! from that line of work:
//!
//! * [`Bst`] — the unbalanced leaf-oriented binary search tree (one SCX
//!   per update, no rebalancing);
//! * [`ChromaticTree`] — the relaxed-balance red-black tree whose
//!   rebalancing transformations are also single SCXs, giving `O(log n)`
//!   height at quiescence;
//! * [`PatriciaTrie`] — a binary Patricia trie over `u64` keys (the §2
//!   sibling application \[15\]), with structurally bounded depth and no
//!   rebalancing.
//!
//! # Example
//!
//! ```
//! use trees::ChromaticTree;
//!
//! let tree: ChromaticTree<u64, &str> = ChromaticTree::new();
//! assert!(tree.insert(2, "two"));
//! assert!(tree.insert(1, "one"));
//! assert!(!tree.insert(2, "dup"));
//! assert_eq!(tree.get(2), Some("two"));
//! assert_eq!(tree.remove(1), Some("one"));
//! assert_eq!(tree.to_vec(), vec![(2, "two")]);
//! tree.check_balanced().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bst;
mod chromatic;
mod node;
mod patricia;
mod scan;
pub mod validate;

pub use bst::Bst;
pub use chromatic::ChromaticTree;
pub use node::{NodeInfo, TreeKey};
pub use patricia::PatriciaTrie;
pub use scan::ScanWindow;
