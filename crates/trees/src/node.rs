//! Shared node machinery for the LLX/SCX trees.
//!
//! Both trees are *leaf-oriented* (external): every key in the set is in
//! a leaf; internal nodes carry routing keys. A node is a Data-record
//! with two mutable fields (`LEFT`, `RIGHT`, null in leaves) and an
//! immutable payload carrying the key, the chromatic weight and an
//! optional user value (leaves only).
//!
//! The key space is extended with two infinities (following Ellen,
//! Fatourou, Ruppert & van Breugel and the paper's §6 follow-up): the
//! root holds `Inf2`, the initial leaves hold `Inf1`/`Inf2`, and every
//! user key compares below both.

use llx_scx::DataRecord;

/// Mutable field index of the left child pointer.
pub(crate) const LEFT: usize = 0;
/// Mutable field index of the right child pointer.
pub(crate) const RIGHT: usize = 1;

/// A user key extended with the two sentinel infinities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeKey<K> {
    /// A user key; compares below the infinities.
    Key(K),
    /// The first infinity: key of the initial left leaf.
    Inf1,
    /// The second infinity: key of the root and of the right leaf.
    Inf2,
}

impl<K: Ord> PartialOrd for TreeKey<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for TreeKey<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use TreeKey::*;
        match (self, other) {
            (Key(a), Key(b)) => a.cmp(b),
            (Key(_), _) => Less,
            (_, Key(_)) => Greater,
            (Inf1, Inf1) | (Inf2, Inf2) => Equal,
            (Inf1, Inf2) => Less,
            (Inf2, Inf1) => Greater,
        }
    }
}

/// Immutable payload of a tree node.
#[derive(Debug, Clone)]
pub struct NodeInfo<K, V> {
    /// Routing key (internal nodes) or element key (leaves).
    pub key: TreeKey<K>,
    /// Chromatic weight; `0` is red. Unused (always 1) in the plain BST.
    pub weight: u32,
    /// The user value; `Some` only in leaves holding user keys.
    pub value: Option<V>,
}

/// A tree node: Data-record with `LEFT`/`RIGHT` mutable pointers.
pub type Node<K, V> = DataRecord<2, NodeInfo<K, V>>;

/// Shorthand for the LLX/SCX domain of a tree.
pub type TreeDomain<K, V> = llx_scx::Domain<2, NodeInfo<K, V>>;

/// Whether a node is a leaf. Leaves are created with null children and
/// children never become null, so this is a stable property.
#[inline]
pub(crate) fn is_leaf<K, V>(n: &Node<K, V>) -> bool {
    n.read(LEFT) == llx_scx::NULL
}

/// The child direction `key` takes at an internal node: left iff
/// `key < node.key`.
#[inline]
pub(crate) fn dir_of<K: Ord, V>(key: &TreeKey<K>, node: &Node<K, V>) -> usize {
    if key < &node.immutable().key {
        LEFT
    } else {
        RIGHT
    }
}

/// The extreme (leftmost / rightmost) *user-key* leaf below `root`.
///
/// Descends along `dir`, backtracking past the sentinel leaves (which
/// occupy the rightmost positions): at each node the `dir` subtree is
/// preferred, falling back to the other side when a subtree holds only
/// sentinels. `O(height)` on the preferred spine plus the fallback hops.
pub(crate) fn extreme_leaf<K: Copy + Ord, V: Clone>(
    domain: &TreeDomain<K, V>,
    root: *const Node<K, V>,
    dir: usize,
    guard: &llx_scx::Guard,
) -> Option<(K, V)> {
    fn go<K: Copy + Ord, V: Clone>(
        domain: &TreeDomain<K, V>,
        n: &Node<K, V>,
        dir: usize,
        guard: &llx_scx::Guard,
    ) -> Option<(K, V)> {
        if is_leaf(n) {
            let info = n.immutable();
            if let (TreeKey::Key(k), Some(v)) = (&info.key, &info.value) {
                return Some((*k, v.clone()));
            }
            return None;
        }
        // SAFETY: children of a reachable internal node, guard-protected.
        let preferred: &Node<K, V> = unsafe { domain.deref(n.read(dir), guard) };
        go(domain, preferred, dir, guard).or_else(|| {
            let other: &Node<K, V> = unsafe { domain.deref(n.read(1 - dir), guard) };
            go(domain, other, dir, guard)
        })
    }
    // SAFETY: the entry point is never retired.
    go(domain, unsafe { &*root }, dir, guard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_key_ordering() {
        use TreeKey::*;
        let k1: TreeKey<u32> = Key(1);
        let k2: TreeKey<u32> = Key(u32::MAX);
        assert!(k1 < k2);
        assert!(k2 < Inf1);
        assert!(Inf1::<u32> < Inf2);
        assert!(k1 < Inf2);
        assert_eq!(Inf1::<u32>.cmp(&Inf1), std::cmp::Ordering::Equal);
    }

    #[test]
    fn leaf_detection() {
        let d: TreeDomain<u32, ()> = TreeDomain::new();
        let leaf = d.alloc(
            NodeInfo {
                key: TreeKey::Key(1),
                weight: 1,
                value: Some(()),
            },
            [llx_scx::NULL, llx_scx::NULL],
        );
        let inner = d.alloc(
            NodeInfo {
                key: TreeKey::Key(2),
                weight: 1,
                value: None,
            },
            [llx_scx::pack_ptr(leaf), llx_scx::pack_ptr(leaf)],
        );
        unsafe {
            assert!(is_leaf(&*leaf));
            assert!(!is_leaf(&*inner));
            let g = llx_scx::pin();
            d.retire(inner, &g);
            d.retire(leaf, &g);
        }
    }

    #[test]
    fn direction_routing() {
        let d: TreeDomain<u32, ()> = TreeDomain::new();
        let node = d.alloc(
            NodeInfo {
                key: TreeKey::Key(10),
                weight: 1,
                value: None,
            },
            [1, 1], // placeholder non-null children
        );
        let n = unsafe { &*node };
        assert_eq!(dir_of(&TreeKey::Key(5), n), LEFT);
        assert_eq!(dir_of(&TreeKey::Key(10), n), RIGHT);
        assert_eq!(dir_of(&TreeKey::Key(15), n), RIGHT);
        assert_eq!(dir_of(&TreeKey::Inf1, n), RIGHT);
        unsafe {
            let g = llx_scx::pin();
            d.retire(node, &g);
        }
    }
}
