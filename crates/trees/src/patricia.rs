//! A non-blocking Patricia trie on LLX/SCX.
//!
//! The paper's §2 cites Shafiei's non-blocking Patricia tries [15] as a
//! sibling application of the cooperative technique; with LLX/SCX the
//! structure falls out of the same *replace-a-constant-neighborhood*
//! templates as the trees:
//!
//! * the trie is binary and leaf-oriented over `u64` keys; internal
//!   nodes carry the branch bit (bits strictly decrease downward);
//! * `insert` splices one fresh internal node above the first edge whose
//!   subtree disagrees with the new key at the branch bit — one SCX on
//!   the parent, nothing finalized (the displaced subtree is re-linked);
//! * `remove` unlinks the leaf and its parent, promoting the sibling —
//!   the same `SCX(V=⟨gp, p, l⟩, R=⟨p, l⟩)` shape as the BST delete;
//! * the empty trie is a fresh *empty sentinel* node (never a repeated
//!   null pointer — the §4.1 no-ABA contract again).
//!
//! Unlike the comparison-based trees, depth is bounded by the key width
//! (≤ 64) regardless of adversarial insertion order, with no
//! rebalancing at all.

use std::fmt;

use llx_scx::{DataRecord, FieldId, Guard, ScxRequest};

const LEFT: usize = 0;
const RIGHT: usize = 1;

/// Payload of a trie node.
#[derive(Debug, Clone)]
pub struct PatInfo<V> {
    /// Leaf: the full key. Internal: any key in the subtree (used to
    /// compute differing bits). Empty sentinel: 0.
    key: u64,
    kind: PatKind<V>,
}

#[derive(Debug, Clone)]
enum PatKind<V> {
    /// The empty-trie sentinel.
    Empty,
    /// A leaf holding the value for `key`.
    Leaf(V),
    /// An internal node branching on `bit` (0..=63; children disagree at
    /// that bit, all agree above it).
    Internal { bit: u32 },
}

type Node<V> = DataRecord<2, PatInfo<V>>;
type PatDomain<V> = llx_scx::Domain<2, PatInfo<V>>;

/// A non-blocking Patricia trie mapping `u64` keys to values.
///
/// Same API shape as [`crate::Bst`]; `O(min(64, n))` depth guaranteed
/// structurally.
pub struct PatriciaTrie<V> {
    domain: PatDomain<V>,
    /// Entry point; its `LEFT` field points at the trie top (a leaf,
    /// internal node, or the empty sentinel). `RIGHT` is unused.
    root: *const Node<V>,
}

unsafe impl<V: Send + Sync> Send for PatriciaTrie<V> {}
unsafe impl<V: Send + Sync> Sync for PatriciaTrie<V> {}

impl<V: Clone> Default for PatriciaTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bit_of(key: u64, bit: u32) -> usize {
    if key >> bit & 1 == 0 {
        LEFT
    } else {
        RIGHT
    }
}

impl<V: Clone> PatriciaTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        let domain = PatDomain::new();
        let empty = domain.alloc(
            PatInfo {
                key: 0,
                kind: PatKind::Empty,
            },
            [llx_scx::NULL, llx_scx::NULL],
        );
        let root = domain.alloc(
            PatInfo {
                key: 0,
                kind: PatKind::Empty,
            },
            [llx_scx::pack_ptr(empty), llx_scx::NULL],
        );
        PatriciaTrie { domain, root }
    }

    fn alloc_leaf(&self, key: u64, value: V) -> *const Node<V> {
        self.domain.alloc(
            PatInfo {
                key,
                kind: PatKind::Leaf(value),
            },
            [llx_scx::NULL, llx_scx::NULL],
        )
    }

    /// Descend to the leaf (or empty sentinel) the key routes to,
    /// tracking the parent and grandparent.
    fn search<'g>(
        &self,
        key: u64,
        guard: &'g Guard,
    ) -> (Option<&'g Node<V>>, &'g Node<V>, &'g Node<V>) {
        let mut gp: Option<&'g Node<V>> = None;
        // SAFETY: root never retired; children guard-protected.
        let mut p: &'g Node<V> = unsafe { &*self.root };
        let mut l: &'g Node<V> = unsafe { self.domain.deref(p.read(LEFT), guard) };
        while let PatKind::Internal { bit } = l.immutable().kind {
            gp = Some(p);
            p = l;
            l = unsafe { self.domain.deref(l.read(bit_of(key, bit)), guard) };
        }
        (gp, p, l)
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: u64) -> Option<V> {
        let guard = llx_scx::pin();
        let (_, _, l) = self.search(key, &guard);
        match &l.immutable().kind {
            PatKind::Leaf(v) if l.immutable().key == key => Some(v.clone()),
            _ => None,
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value` if absent; returns whether it inserted.
    pub fn insert(&self, key: u64, value: V) -> bool {
        loop {
            let guard = llx_scx::pin();
            let (_gp, _p, l) = self.search(key, &guard);
            match &l.immutable().kind {
                PatKind::Leaf(_) if l.immutable().key == key => return false,
                PatKind::Empty => {
                    // Replace the empty sentinel with the first leaf.
                    let root: &Node<V> = unsafe { &*self.root };
                    let (Some(sr), Some(se)) = (
                        self.domain.llx(root, &guard).snapshot(),
                        self.domain.llx(l, &guard).snapshot(),
                    ) else {
                        continue;
                    };
                    if sr.value(LEFT) != llx_scx::pack_ptr(l as *const Node<V>) {
                        continue;
                    }
                    let leaf = self.alloc_leaf(key, value.clone());
                    if self.domain.scx(
                        ScxRequest::new(&[sr, se], FieldId::new(0, LEFT), llx_scx::pack_ptr(leaf))
                            .finalize(1),
                        &guard,
                    ) {
                        // SAFETY: sentinel unlinked by the committed SCX.
                        unsafe { self.domain.retire(l as *const Node<V>, &guard) };
                        return true;
                    }
                    // SAFETY: never published.
                    unsafe { self.domain.dealloc(leaf) };
                }
                _ => {
                    // Splice a new internal node at the first edge whose
                    // subtree branches below the differing bit.
                    let diff = l.immutable().key ^ key;
                    debug_assert_ne!(diff, 0);
                    let d = 63 - diff.leading_zeros();
                    // Re-descend to the insertion edge: parent `p`,
                    // child `c` with (c leaf or c.bit < d).
                    let mut p: &Node<V> = unsafe { &*self.root };
                    let mut fld = LEFT;
                    let mut c: &Node<V> = unsafe { self.domain.deref(p.read(fld), &guard) };
                    while let PatKind::Internal { bit } = c.immutable().kind {
                        if bit < d {
                            break;
                        }
                        p = c;
                        fld = bit_of(key, bit);
                        c = unsafe { self.domain.deref(c.read(fld), &guard) };
                    }
                    let Some(sp) = self.domain.llx(p, &guard).snapshot() else {
                        continue;
                    };
                    if sp.value(fld) != llx_scx::pack_ptr(c as *const Node<V>) {
                        continue;
                    }
                    // The subtree `c` must still disagree with `key` at
                    // bit d (it can have been replaced by the time we
                    // re-descended; the key field check catches that).
                    if (c.immutable().key ^ key) >> d == 0
                        || 63 - ((c.immutable().key ^ key).leading_zeros()) != d
                    {
                        continue;
                    }
                    let leaf = self.alloc_leaf(key, value.clone());
                    let (lw, rw) = if bit_of(key, d) == LEFT {
                        (
                            llx_scx::pack_ptr(leaf),
                            llx_scx::pack_ptr(c as *const Node<V>),
                        )
                    } else {
                        (
                            llx_scx::pack_ptr(c as *const Node<V>),
                            llx_scx::pack_ptr(leaf),
                        )
                    };
                    let internal = self.domain.alloc(
                        PatInfo {
                            key,
                            kind: PatKind::Internal { bit: d },
                        },
                        [lw, rw],
                    );
                    // V = ⟨p⟩: the displaced subtree `c` is re-linked,
                    // not modified; any concurrent replacement of `c`
                    // must modify `p` and therefore conflicts on `p`.
                    if self.domain.scx(
                        ScxRequest::new(&[sp], FieldId::new(0, fld), llx_scx::pack_ptr(internal)),
                        &guard,
                    ) {
                        return true;
                    }
                    // SAFETY: never published.
                    unsafe {
                        self.domain.dealloc(internal);
                        self.domain.dealloc(leaf);
                    }
                }
            }
        }
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&self, key: u64) -> Option<V> {
        loop {
            let guard = llx_scx::pin();
            let (gp, p, l) = self.search(key, &guard);
            match &l.immutable().kind {
                PatKind::Leaf(_) if l.immutable().key == key => {}
                _ => return None,
            }
            let value = match &l.immutable().kind {
                PatKind::Leaf(v) => Some(v.clone()),
                _ => unreachable!(),
            };
            if std::ptr::eq(p, self.root as *const Node<V>) {
                // The only leaf: replace it with a fresh empty sentinel
                // (never reuse a pointer value — §4.1).
                let (Some(sp), Some(sl)) = (
                    self.domain.llx(p, &guard).snapshot(),
                    self.domain.llx(l, &guard).snapshot(),
                ) else {
                    continue;
                };
                if sp.value(LEFT) != llx_scx::pack_ptr(l as *const Node<V>) {
                    continue;
                }
                let empty = self.domain.alloc(
                    PatInfo {
                        key: 0,
                        kind: PatKind::Empty,
                    },
                    [llx_scx::NULL, llx_scx::NULL],
                );
                if self.domain.scx(
                    ScxRequest::new(&[sp, sl], FieldId::new(0, LEFT), llx_scx::pack_ptr(empty))
                        .finalize(1),
                    &guard,
                ) {
                    // SAFETY: unlinked by the committed SCX.
                    unsafe { self.domain.retire(l as *const Node<V>, &guard) };
                    return value;
                }
                // SAFETY: never published.
                unsafe { self.domain.dealloc(empty) };
                continue;
            }
            // General case: unlink l and p, promote the sibling
            // (identical template to the BST delete).
            let gp = gp.expect("non-root parent implies grandparent");
            let (Some(sgp), Some(sp), Some(sl)) = (
                self.domain.llx(gp, &guard).snapshot(),
                self.domain.llx(p, &guard).snapshot(),
                self.domain.llx(l, &guard).snapshot(),
            ) else {
                continue;
            };
            let gd = if std::ptr::eq(gp, self.root as *const Node<V>) {
                LEFT
            } else {
                match gp.immutable().kind {
                    PatKind::Internal { bit } => bit_of(key, bit),
                    _ => unreachable!("grandparent is internal"),
                }
            };
            let pd = match p.immutable().kind {
                PatKind::Internal { bit } => bit_of(key, bit),
                _ => unreachable!("parent is internal"),
            };
            if sgp.value(gd) != llx_scx::pack_ptr(p as *const Node<V>)
                || sp.value(pd) != llx_scx::pack_ptr(l as *const Node<V>)
            {
                continue;
            }
            let sibling = sp.value(1 - pd);
            if self.domain.scx(
                ScxRequest::new(&[sgp, sp, sl], FieldId::new(0, gd), sibling)
                    .finalize(1)
                    .finalize(2),
                &guard,
            ) {
                // SAFETY: both unlinked by the committed SCX.
                unsafe {
                    self.domain.retire(p as *const Node<V>, &guard);
                    self.domain.retire(l as *const Node<V>, &guard);
                }
                return value;
            }
        }
    }

    /// Fold over `(key, value)` pairs in ascending key order (traversal
    /// semantics, like the other structures).
    pub fn fold<A, F: FnMut(A, u64, &V) -> A>(&self, init: A, mut f: F) -> A {
        let guard = llx_scx::pin();
        let mut acc = init;
        let root: &Node<V> = unsafe { &*self.root };
        let mut stack: Vec<&Node<V>> = vec![unsafe { self.domain.deref(root.read(LEFT), &guard) }];
        while let Some(n) = stack.pop() {
            match &n.immutable().kind {
                PatKind::Empty => {}
                PatKind::Leaf(v) => acc = f(acc, n.immutable().key, v),
                PatKind::Internal { .. } => {
                    stack.push(unsafe { self.domain.deref(n.read(RIGHT), &guard) });
                    stack.push(unsafe { self.domain.deref(n.read(LEFT), &guard) });
                }
            }
        }
        acc
    }

    /// Fold over the `(key, value)` pairs with keys in the inclusive
    /// range `[lo, hi]`, ascending, over a **consistent snapshot**.
    ///
    /// The walk descends by *prefix pruning*: an internal node branching
    /// on `bit` covers exactly the keys that agree with its
    /// (immutable) representative key above `bit`, a contiguous
    /// interval, so disjoint subtrees are skipped without being read —
    /// for a range that is a prefix interval this is precisely the
    /// trie's `O(bits)` prefix descent. Every node actually visited is
    /// LLXed, children are followed through the snapshots, and the
    /// visited set is validated with one VLX (retrying on conflict), so
    /// the collected pairs all held at the VLX's linearization point.
    /// `lo > hi` folds nothing.
    pub fn fold_range<A, F: FnMut(A, u64, &V) -> A>(
        &self,
        lo: u64,
        hi: u64,
        init: A,
        mut f: F,
    ) -> A {
        if lo > hi {
            return init;
        }
        let pairs = loop {
            let guard = llx_scx::pin();
            if let Some((pairs, _end)) = self.try_window(lo, hi, usize::MAX, &guard) {
                break pairs;
            }
        };
        pairs.into_iter().fold(init, |acc, (k, v)| f(acc, k, &v))
    }

    /// One optimistic windowed attempt over `[from, hi]`, through the
    /// shared tree-scan engine (`scan` module); `None` means an LLX
    /// failed, a visited node was finalized, or the VLX rejected the
    /// visited set.
    fn try_window(
        &self,
        from: u64,
        hi: u64,
        max_keys: usize,
        guard: &Guard,
    ) -> Option<(Vec<(u64, V)>, bool)> {
        use crate::scan::Visit;
        let root = self.root;
        // Prune at push time, before the child is ever LLXed: an
        // internal node branching on `bit` covers exactly the keys that
        // agree with its (immutable) representative above `bit` — the
        // interval [min, max] — so disjoint subtrees are skipped
        // unread; the trie invariant on immutable keys makes the
        // pruning decision stable. Leaves and the empty sentinel are
        // always visited (their keys decide membership under the VLX).
        let overlapping = |child: &Node<V>| -> bool {
            match &child.immutable().kind {
                PatKind::Internal { bit } => {
                    let hi_mask = if *bit >= 63 { 0 } else { !0u64 << (bit + 1) };
                    let min = child.immutable().key & hi_mask;
                    let max = min | !hi_mask;
                    max >= from && min <= hi
                }
                PatKind::Leaf(_) | PatKind::Empty => true,
            }
        };
        // SAFETY: the root entry point is never retired; children come
        // from validated snapshots and are protected by `guard`.
        let start: &Node<V> = unsafe { &*root };
        crate::scan::try_collect_window(&self.domain, start, max_keys, guard, &mut |n, s| {
            if std::ptr::eq(n, root) {
                // The entry point: kind Empty, but its LEFT child is
                // the trie top.
                // SAFETY: snapshotted child under `guard`.
                let top: &Node<V> = unsafe { self.domain.deref(s.value(LEFT), guard) };
                return Visit::Push([None, overlapping(top).then_some(top)]);
            }
            match &n.immutable().kind {
                PatKind::Empty => Visit::Leaf(None),
                PatKind::Leaf(v) => {
                    let k = n.immutable().key;
                    Visit::Leaf((from <= k && k <= hi).then(|| (k, v.clone())))
                }
                PatKind::Internal { .. } => {
                    // SAFETY: snapshotted children under `guard`.
                    let right: &Node<V> = unsafe { self.domain.deref(s.value(RIGHT), guard) };
                    let left: &Node<V> = unsafe { self.domain.deref(s.value(LEFT), guard) };
                    // Right before left so lefts pop first (ascending).
                    Visit::Push([
                        overlapping(right).then_some(right),
                        overlapping(left).then_some(left),
                    ])
                }
            }
        })
    }

    /// One bounded-window snapshot attempt: collect up to `max_keys`
    /// keys of `[from, hi]` (ascending) and validate just the visited
    /// nodes with one VLX; see `Bst::try_scan_window` for the
    /// contract. Prefix-shaped windows keep the trie's `O(bits)`
    /// descent — pruning happens on immutable intervals before a
    /// subtree is ever read.
    ///
    /// # Panics
    ///
    /// Panics if `max_keys == 0`.
    pub fn try_scan_window(
        &self,
        from: u64,
        hi: u64,
        max_keys: usize,
    ) -> Option<crate::ScanWindow<u64, V>> {
        assert!(max_keys > 0, "a scan window covers at least one key");
        if from > hi {
            return Some(crate::ScanWindow {
                pairs: Vec::new(),
                covered_hi: hi,
                end: true,
            });
        }
        let guard = llx_scx::pin();
        let (pairs, end) = self.try_window(from, hi, max_keys, &guard)?;
        let covered_hi = if end {
            hi
        } else {
            pairs.last().expect("a capped window is non-empty").0
        };
        Some(crate::ScanWindow {
            pairs,
            covered_hi,
            end,
        })
    }

    /// Number of keys in `[lo, hi]` at a single linearization point.
    /// See [`PatriciaTrie::fold_range`].
    pub fn range_count(&self, lo: u64, hi: u64) -> u64 {
        self.fold_range(lo, hi, 0u64, |acc, _, _| acc + 1)
    }

    /// Collect `(key, value)` pairs in ascending key order.
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        self.fold(Vec::new(), |mut v, k, val| {
            v.push((k, val.clone()));
            v
        })
    }

    /// Collect all `(key, value)` pairs whose key starts with the
    /// `bits`-bit prefix `prefix` (the high `bits` bits of the key),
    /// in ascending key order.
    ///
    /// This is the query Patricia tries exist for: the trie's branch
    /// structure locates the covering subtree in `O(bits)` steps, then
    /// only matching keys are enumerated. Traversal semantics as for
    /// [`PatriciaTrie::fold`].
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 64` (use `fold` for "all keys").
    pub fn keys_with_prefix(&self, prefix: u64, bits: u32) -> Vec<(u64, V)> {
        assert!((1..=64).contains(&bits), "prefix length must be in 1..=64");
        let low = 64 - bits; // lowest bit index covered by the prefix
        let mask = if bits == 64 { u64::MAX } else { !0u64 << low };
        let want = prefix & mask;
        let guard = llx_scx::pin();
        let root: &Node<V> = unsafe { &*self.root };
        let mut n: &Node<V> = unsafe { self.domain.deref(root.read(LEFT), &guard) };
        // Descend while the branch bit is above the prefix: the subtree
        // containing all `want`-prefixed keys lies on `want`'s side.
        loop {
            match n.immutable().kind {
                PatKind::Internal { bit } if bit >= low => {
                    n = unsafe { self.domain.deref(n.read(bit_of(want, bit)), &guard) };
                }
                _ => break,
            }
        }
        // `n` now covers (at most) the prefix subtree; verify its
        // representative actually matches and enumerate.
        if n.immutable().key & mask != want {
            if let PatKind::Leaf(_) | PatKind::Internal { .. } = n.immutable().kind {
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            match &m.immutable().kind {
                PatKind::Empty => {}
                PatKind::Leaf(v) => {
                    if m.immutable().key & mask == want {
                        out.push((m.immutable().key, v.clone()));
                    }
                }
                PatKind::Internal { .. } => {
                    stack.push(unsafe { self.domain.deref(m.read(RIGHT), &guard) });
                    stack.push(unsafe { self.domain.deref(m.read(LEFT), &guard) });
                }
            }
        }
        out
    }

    /// Number of keys (traversal semantics).
    pub fn len(&self) -> usize {
        self.fold(0, |a, _, _| a + 1)
    }

    /// True if a traversal finds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural validation: branch bits strictly decrease downward,
    /// every leaf's key matches its path, no reachable node finalized,
    /// the empty sentinel appears only alone at the top.
    pub fn check_invariants(&self) -> Result<(), String> {
        let guard = llx_scx::pin();
        let root: &Node<V> = unsafe { &*self.root };
        let top: &Node<V> = unsafe { self.domain.deref(root.read(LEFT), &guard) };
        self.check_node(top, 64, 0, 0, &guard)
    }

    fn check_node(
        &self,
        n: &Node<V>,
        parent_bit: u32,
        path_bits: u64,
        path_mask: u64,
        guard: &Guard,
    ) -> Result<(), String> {
        if n.is_marked() {
            return Err("reachable node is finalized".into());
        }
        match &n.immutable().kind {
            PatKind::Empty => {
                if parent_bit != 64 {
                    return Err("empty sentinel below the top".into());
                }
                Ok(())
            }
            PatKind::Leaf(_) => {
                let key = n.immutable().key;
                if key & path_mask != path_bits {
                    return Err(format!("leaf key {key:#x} disagrees with its path"));
                }
                Ok(())
            }
            PatKind::Internal { bit } => {
                if *bit >= parent_bit {
                    return Err(format!(
                        "branch bit {bit} does not decrease below parent bit {parent_bit}"
                    ));
                }
                let l: &Node<V> = unsafe { self.domain.deref(n.read(LEFT), guard) };
                let r: &Node<V> = unsafe { self.domain.deref(n.read(RIGHT), guard) };
                let mask = path_mask | (1u64 << bit);
                self.check_node(l, *bit, path_bits, mask, guard)?;
                self.check_node(r, *bit, path_bits | (1u64 << bit), mask, guard)
            }
        }
    }

    /// Depth in edges of the deepest leaf below the entry point.
    pub fn depth(&self) -> usize {
        let guard = llx_scx::pin();
        fn go<V>(t: &PatriciaTrie<V>, n: &Node<V>, guard: &Guard) -> usize
        where
            V: Clone,
        {
            match n.immutable().kind {
                PatKind::Internal { .. } => {
                    let l: &Node<V> = unsafe { t.domain.deref(n.read(LEFT), guard) };
                    let r: &Node<V> = unsafe { t.domain.deref(n.read(RIGHT), guard) };
                    1 + go(t, l, guard).max(go(t, r, guard))
                }
                _ => 0,
            }
        }
        let root: &Node<V> = unsafe { &*self.root };
        let top: &Node<V> = unsafe { self.domain.deref(root.read(LEFT), &guard) };
        go(self, top, &guard)
    }
}

impl<V> Drop for PatriciaTrie<V> {
    fn drop(&mut self) {
        let mut stack = vec![self.root];
        while let Some(ptr) = stack.pop() {
            // SAFETY: exclusive during drop.
            let node = unsafe { Box::from_raw(ptr as *mut Node<V>) };
            for f in [LEFT, RIGHT] {
                let w = node.read(f);
                if w != llx_scx::NULL {
                    stack.push(w as usize as *const Node<V>);
                }
            }
        }
    }
}

impl<V: Clone + fmt::Debug> fmt::Debug for PatriciaTrie<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.to_vec()).finish()
    }
}
