//! Non-blocking chromatic tree on LLX/SCX (paper §6).
//!
//! A chromatic tree (Nurmi & Soisalon-Soininen; rebalancing operations
//! after Boyar & Larsen) is a relaxed red-black tree: every node carries
//! a *weight* (`0` = red, `1` = black, `>= 2` = overweight), and two
//! kinds of *violations* may exist transiently:
//!
//! * a **red-red violation** at a red node with a red parent;
//! * an **overweight violation** at a node with weight `>= 2`.
//!
//! When no violations exist the tree is a red-black tree, so its height
//! is `O(log n)`. Updates are exactly the paper's follow-up design
//! (Brown, Ellen & Ruppert, PPoPP 2014): each `Insert`/`Delete` performs
//! one SCX over a constant-size neighborhood and then *cleans up* any
//! violation it created by walking from the entry point toward its key
//! and applying local transformations, each again one SCX.
//!
//! **Weighted path sums are preserved exactly by every update and every
//! transformation** — this is the central invariant; it holds at every
//! instant, not just at quiescence, and it makes the overweight case
//! analysis below total (impossible weight combinations are genuinely
//! unreachable). The validator `validate::check_balanced` verifies path
//! sums, violation freedom and the red-black height bound after
//! quiescence.
//!
//! Transformations implemented (with left/right mirrors, following
//! Boyar–Larsen's catalogue):
//!
//! | name | trigger | effect |
//! |------|---------|--------|
//! | `BLK` | red-red at `u`, red uncle | blacken parent+uncle, pull weight from grandparent (may move violation up) |
//! | `RB1` | red-red at `u` (outside), black uncle | single rotation |
//! | `RB2` | red-red at `u` (inside), black uncle | double rotation |
//! | `PUSH` | overweight `u`, sibling weight `>= 2`, or `== 1` with black nephews | move one weight unit from `u` and sibling up to parent |
//! | `W-FAR` | overweight `u`, sibling black, far nephew red | single rotation |
//! | `W-NEAR` | overweight `u`, sibling black, near nephew red (far black) | double rotation |
//! | `W-RED` | overweight `u`, sibling red (black nephews, black parent) | rotation making the sibling black |
//! | `RR-SIB` | overweight `u` blocked by a red-red in the sibling area | the matching `BLK`/`RB1`/`RB2` |
//! | root recolor | violation at the entry point's child | copy with weight 1 (uniform path shift) |

use std::fmt;

use llx_scx::{FieldId, Guard, Llx, ScxRequest};

use crate::bst::{new_root, search_leaf};
use crate::node::{dir_of, is_leaf, Node, NodeInfo, TreeDomain, TreeKey, LEFT, RIGHT};

type Snap<'g, K, V> = Llx<'g, 2, NodeInfo<K, V>>;

/// A linearizable, non-blocking balanced dictionary: the chromatic tree
/// of the paper's §6 follow-up.
///
/// Same API as [`crate::Bst`], plus balance: after updates quiesce and
/// their cleanup completes, the tree satisfies the red-black invariants
/// (checked by [`ChromaticTree::check_balanced`]).
pub struct ChromaticTree<K, V> {
    domain: TreeDomain<K, V>,
    root: *const Node<K, V>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for ChromaticTree<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for ChromaticTree<K, V> {}

impl<K: Copy + Ord, V: Clone> Default for ChromaticTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Ord, V: Clone> ChromaticTree<K, V> {
    /// An empty tree: `root(∞₂, w=1) → {leaf(∞₁, 1), leaf(∞₂, 1)}`.
    pub fn new() -> Self {
        let domain = TreeDomain::new();
        let root = new_root(&domain);
        ChromaticTree { domain, root }
    }

    /// The value associated with `key`, if present.
    pub fn get(&self, key: K) -> Option<V> {
        let guard = llx_scx::pin();
        let k = TreeKey::Key(key);
        let res = search_leaf(&self.domain, self.root, &k, &guard);
        let info = res.l.immutable();
        if info.key == k {
            info.value.clone()
        } else {
            None
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    fn alloc_leaf(&self, key: TreeKey<K>, weight: u32, value: Option<V>) -> *const Node<K, V> {
        self.domain.alloc(
            NodeInfo { key, weight, value },
            [llx_scx::NULL, llx_scx::NULL],
        )
    }

    fn alloc_internal(
        &self,
        key: TreeKey<K>,
        weight: u32,
        left: u64,
        right: u64,
    ) -> *const Node<K, V> {
        debug_assert!(left != llx_scx::NULL && right != llx_scx::NULL);
        self.domain.alloc(
            NodeInfo {
                key,
                weight,
                value: None,
            },
            [left, right],
        )
    }

    /// A copy of `n` (children from its snapshot) with a new weight.
    fn copy_with_weight(&self, s: &Snap<'_, K, V>, weight: u32) -> *const Node<K, V> {
        let info = s.record().immutable();
        self.domain.alloc(
            NodeInfo {
                key: info.key,
                weight,
                value: info.value.clone(),
            },
            [s.value(LEFT), s.value(RIGHT)],
        )
    }

    /// Insert `key -> value` if absent; returns whether it inserted.
    ///
    /// Replaces the reached leaf `l` (weight `wl`) by an internal node of
    /// weight `wl - 1` with two fresh leaves of weight 1 (weight 1 when
    /// the new internal node becomes the entry point's child) — weighted
    /// path sums are preserved exactly. Cleans up any created violation.
    pub fn insert(&self, key: K, value: V) -> bool {
        let k = TreeKey::Key(key);
        loop {
            let guard = llx_scx::pin();
            let res = search_leaf(&self.domain, self.root, &k, &guard);
            let l_info = res.l.immutable();
            if l_info.key == k {
                return false;
            }
            let (Some(sp), Some(sl)) = (
                self.domain.llx(res.p, &guard).snapshot(),
                self.domain.llx(res.l, &guard).snapshot(),
            ) else {
                continue;
            };
            let d = dir_of(&k, res.p);
            if sp.value(d) != llx_scx::pack_ptr(res.l as *const Node<K, V>) {
                continue;
            }
            let wl = l_info.weight;
            let at_entry = std::ptr::eq(res.p, self.root as *const Node<K, V>);
            let weight = if at_entry { 1 } else { wl.saturating_sub(1) };
            let new_leaf = self.alloc_leaf(k, 1, Some(value.clone()));
            let l_copy = self.alloc_leaf(l_info.key, 1, l_info.value.clone());
            let (lc, rc, ikey) = if k < l_info.key {
                (new_leaf, l_copy, l_info.key)
            } else {
                (l_copy, new_leaf, k)
            };
            let internal =
                self.alloc_internal(ikey, weight, llx_scx::pack_ptr(lc), llx_scx::pack_ptr(rc));
            let p_red = res.p.immutable().weight == 0;
            if self.domain.scx(
                ScxRequest::new(&[sp, sl], FieldId::new(0, d), llx_scx::pack_ptr(internal))
                    .finalize(1),
                &guard,
            ) {
                // SAFETY: l unlinked by the committed SCX.
                unsafe { self.domain.retire(res.l as *const Node<K, V>, &guard) };
                drop(guard);
                if (weight == 0 && p_red) || weight >= 2 {
                    self.cleanup(&k);
                }
                return true;
            }
            // SAFETY: never published.
            unsafe {
                self.domain.dealloc(internal);
                self.domain.dealloc(new_leaf);
                self.domain.dealloc(l_copy);
            }
        }
    }

    /// Remove `key`, returning its value if present.
    ///
    /// Unlinks leaf `l` and its parent `p`, replacing them with a copy of
    /// the sibling `s` carrying weight `w(p) + w(s)` (weight 1 when it
    /// becomes the entry point's child) — path sums preserved exactly.
    /// Cleans up any created violation.
    pub fn remove(&self, key: K) -> Option<V> {
        let k = TreeKey::Key(key);
        loop {
            let guard = llx_scx::pin();
            let res = search_leaf(&self.domain, self.root, &k, &guard);
            if res.l.immutable().key != k {
                return None;
            }
            let gp = res.gp.expect("user-key leaf always has a grandparent");
            let (Some(sgp), Some(sp), Some(sl)) = (
                self.domain.llx(gp, &guard).snapshot(),
                self.domain.llx(res.p, &guard).snapshot(),
                self.domain.llx(res.l, &guard).snapshot(),
            ) else {
                continue;
            };
            let gd = dir_of(&k, gp);
            let pd = dir_of(&k, res.p);
            if sgp.value(gd) != llx_scx::pack_ptr(res.p as *const Node<K, V>)
                || sp.value(pd) != llx_scx::pack_ptr(res.l as *const Node<K, V>)
            {
                continue;
            }
            let s: &Node<K, V> = unsafe { self.domain.deref(sp.value(1 - pd), &guard) };
            let Some(ss) = self.domain.llx(s, &guard).snapshot() else {
                continue;
            };
            let at_entry = std::ptr::eq(gp, self.root as *const Node<K, V>);
            let wp = res.p.immutable().weight;
            let ws = s.immutable().weight;
            let weight = if at_entry { 1 } else { wp + ws };
            let replacement = self.copy_with_weight(&ss, weight);
            // V in traversal order: gp, p, then p's children left-right.
            let (v, fin_a, fin_b) = if pd == LEFT {
                ([sgp, sp, sl, ss], 2, 3) // l left, s right
            } else {
                ([sgp, sp, ss, sl], 2, 3) // s left, l right
            };
            let value = res.l.immutable().value.clone();
            if self.domain.scx(
                ScxRequest::new(&v, FieldId::new(0, gd), llx_scx::pack_ptr(replacement))
                    .finalize(1)
                    .finalize(fin_a)
                    .finalize(fin_b),
                &guard,
            ) {
                // SAFETY: all three unlinked by the committed SCX.
                unsafe {
                    self.domain.retire(res.p as *const Node<K, V>, &guard);
                    self.domain.retire(res.l as *const Node<K, V>, &guard);
                    self.domain.retire(s as *const Node<K, V>, &guard);
                }
                let needs_cleanup = weight >= 2 || (weight == 0 && gp.immutable().weight == 0);
                drop(guard);
                if needs_cleanup {
                    self.cleanup(&k);
                }
                return value;
            }
            // SAFETY: never published.
            unsafe { self.domain.dealloc(replacement) };
        }
    }

    /// Walk from the entry point toward `key`, fixing every violation
    /// found on the path, until a walk reaches a leaf cleanly.
    ///
    /// Transformations move violations toward the root along this path,
    /// so the violation this operation created stays on its own path
    /// until eliminated (Boyar–Larsen's potential argument gives
    /// termination; contention failures just re-walk).
    fn cleanup(&self, key: &TreeKey<K>) {
        'walk: loop {
            let guard = llx_scx::pin();
            // Window of the last four nodes on the path: n0 (great-
            // grandparent), n1, n2, n3 (current).
            let mut n0: Option<&Node<K, V>> = None;
            let mut n1: Option<&Node<K, V>> = None;
            let mut n2: &Node<K, V> = unsafe { &*self.root };
            let mut n3: &Node<K, V> =
                unsafe { self.domain.deref(n2.read(dir_of(key, n2)), &guard) };
            loop {
                let w3 = n3.immutable().weight;
                let at_entry_child = std::ptr::eq(n2, self.root as *const Node<K, V>);
                if w3 >= 2 || (w3 == 0 && n2.immutable().weight == 0 && !at_entry_child) {
                    // A violation at n3 (overweight, or red-red).
                    let fixed = if at_entry_child {
                        // Entry point's child: recolor to weight 1; a
                        // uniform shift of every real path sum.
                        self.recolor_entry_child(n3, &guard)
                    } else if w3 >= 2 {
                        self.fix_overweight(n0, n1.expect("n2 below entry"), n2, n3, &guard)
                    } else {
                        // Red-red: n1 exists because n2 (red) is below
                        // the entry point. n1 is black (a higher red-red
                        // would have been fixed earlier on this walk).
                        let gp = n1.expect("red n2 is below the entry child");
                        if std::ptr::eq(gp, self.root as *const Node<K, V>) {
                            // Grandparent is the immutable entry point:
                            // blacken the (red) entry-point child
                            // instead, a uniform path shift.
                            self.recolor_entry_child(n2, &guard)
                        } else {
                            self.fix_red_red(n0, gp, n2, n3, &guard)
                        }
                    };
                    let _ = fixed; // success or failure: re-walk
                    continue 'walk;
                }
                if is_leaf(n3) {
                    return; // path is clean
                }
                n0 = n1;
                n1 = Some(n2);
                n2 = n3;
                n3 = unsafe { self.domain.deref(n3.read(dir_of(key, n3)), &guard) };
            }
        }
    }

    /// Replace the entry point's child by a copy with weight 1 (fixes a
    /// violation at the top by shifting all real path sums uniformly).
    fn recolor_entry_child(&self, u: &Node<K, V>, guard: &Guard) -> bool {
        let root: &Node<K, V> = unsafe { &*self.root };
        let (Some(sr), Some(su)) = (
            self.domain.llx(root, guard).snapshot(),
            self.domain.llx(u, guard).snapshot(),
        ) else {
            return false;
        };
        if sr.value(LEFT) != llx_scx::pack_ptr(u as *const Node<K, V>) {
            return false;
        }
        let copy = self.copy_with_weight(&su, 1);
        if self.domain.scx(
            ScxRequest::new(&[sr, su], FieldId::new(0, LEFT), llx_scx::pack_ptr(copy)).finalize(1),
            guard,
        ) {
            unsafe { self.domain.retire(u as *const Node<K, V>, guard) };
            true
        } else {
            unsafe { self.domain.dealloc(copy) };
            false
        }
    }

    /// Which child slot of `parent` (per its snapshot) holds `child`?
    fn side_of(s: &Snap<'_, K, V>, child: &Node<K, V>) -> Option<usize> {
        let w = llx_scx::pack_ptr(child as *const Node<K, V>);
        if s.value(LEFT) == w {
            Some(LEFT)
        } else if s.value(RIGHT) == w {
            Some(RIGHT)
        } else {
            None
        }
    }

    /// Fix a red-red violation at `u` (red) whose parent `p` is red;
    /// `gp` is black, `holder` is `gp`'s parent (pointer owner).
    ///
    /// Chooses `BLK` (red uncle), `RB1` (black uncle, `u` outside) or
    /// `RB2` (black uncle, `u` inside). Returns whether an SCX
    /// committed; on any staleness it returns false and the caller
    /// re-walks.
    fn fix_red_red(
        &self,
        holder: Option<&Node<K, V>>,
        gp: &Node<K, V>,
        p: &Node<K, V>,
        u: &Node<K, V>,
        guard: &Guard,
    ) -> bool {
        let Some(holder) = holder else {
            return false; // stale: gp should always have a parent here
        };
        let (Some(sh), Some(sgp), Some(sp)) = (
            self.domain.llx(holder, guard).snapshot(),
            self.domain.llx(gp, guard).snapshot(),
            self.domain.llx(p, guard).snapshot(),
        ) else {
            return false;
        };
        let Some(hd) = Self::side_of(&sh, gp) else {
            return false;
        };
        let Some(pd) = Self::side_of(&sgp, p) else {
            return false;
        };
        let Some(ud) = Self::side_of(&sp, u) else {
            return false;
        };
        let wgp = gp.immutable().weight;
        if wgp == 0 || p.immutable().weight != 0 || u.immutable().weight != 0 {
            return false; // stale weights (nodes replaced since detection)
        }
        let uncle: &Node<K, V> = unsafe { self.domain.deref(sgp.value(1 - pd), guard) };
        let at_entry = std::ptr::eq(holder, self.root as *const Node<K, V>);
        let clamp = |w: u32| if at_entry { w.max(1) } else { w };

        if uncle.immutable().weight == 0 {
            // BLK: blacken p and uncle, pull one weight from gp.
            let Some(sun) = self.domain.llx(uncle, guard).snapshot() else {
                return false;
            };
            let p_copy = self.copy_with_weight(&sp, 1);
            let un_copy = self.copy_with_weight(&sun, 1);
            let (lw, rw) = if pd == LEFT {
                (llx_scx::pack_ptr(p_copy), llx_scx::pack_ptr(un_copy))
            } else {
                (llx_scx::pack_ptr(un_copy), llx_scx::pack_ptr(p_copy))
            };
            let n = self.alloc_internal(gp.immutable().key, clamp(wgp - 1), lw, rw);
            // V in traversal order: holder, gp, then gp's children
            // left-to-right.
            let v = if pd == LEFT {
                [sh, sgp, sp, sun]
            } else {
                [sh, sgp, sun, sp]
            };
            if self.domain.scx(
                ScxRequest::new(&v, FieldId::new(0, hd), llx_scx::pack_ptr(n))
                    .finalize(1)
                    .finalize(2)
                    .finalize(3),
                guard,
            ) {
                unsafe {
                    self.domain.retire(gp as *const Node<K, V>, guard);
                    self.domain.retire(p as *const Node<K, V>, guard);
                    self.domain.retire(uncle as *const Node<K, V>, guard);
                }
                true
            } else {
                unsafe {
                    self.domain.dealloc(n);
                    self.domain.dealloc(p_copy);
                    self.domain.dealloc(un_copy);
                }
                false
            }
        } else if pd == ud {
            // RB1: single rotation. (pd == LEFT shown; mirrored below.)
            let uncle_w = sgp.value(1 - pd);
            let c_w = sp.value(1 - ud); // p's other child
            let n = if pd == LEFT {
                let n2 = self.alloc_internal(gp.immutable().key, 0, c_w, uncle_w);
                self.alloc_internal(
                    p.immutable().key,
                    clamp(wgp),
                    sp.value(ud),
                    llx_scx::pack_ptr(n2),
                )
            } else {
                let n2 = self.alloc_internal(gp.immutable().key, 0, uncle_w, c_w);
                self.alloc_internal(
                    p.immutable().key,
                    clamp(wgp),
                    llx_scx::pack_ptr(n2),
                    sp.value(ud),
                )
            };
            if self.domain.scx(
                ScxRequest::new(&[sh, sgp, sp], FieldId::new(0, hd), llx_scx::pack_ptr(n))
                    .finalize(1)
                    .finalize(2),
                guard,
            ) {
                unsafe {
                    self.domain.retire(gp as *const Node<K, V>, guard);
                    self.domain.retire(p as *const Node<K, V>, guard);
                }
                true
            } else {
                // n's inner node is fresh too; free both.
                let inner = if pd == LEFT {
                    unsafe { (*n).read(RIGHT) }
                } else {
                    unsafe { (*n).read(LEFT) }
                };
                unsafe {
                    self.domain.dealloc(n);
                    self.domain.dealloc(inner as usize as *const Node<K, V>);
                }
                false
            }
        } else {
            // RB2: double rotation; u's children are redistributed.
            let Some(su) = self.domain.llx(u, guard).snapshot() else {
                return false;
            };
            let uncle_w = sgp.value(1 - pd);
            let c_w = sp.value(1 - ud); // p's other child (outer)
            let (n1, n2) = if pd == LEFT {
                // p left of gp, u right of p.
                let n1 = self.alloc_internal(p.immutable().key, 0, c_w, su.value(LEFT));
                let n2 = self.alloc_internal(gp.immutable().key, 0, su.value(RIGHT), uncle_w);
                (n1, n2)
            } else {
                // p right of gp, u left of p.
                let n1 = self.alloc_internal(gp.immutable().key, 0, uncle_w, su.value(LEFT));
                let n2 = self.alloc_internal(p.immutable().key, 0, su.value(RIGHT), c_w);
                (n1, n2)
            };
            let n = self.alloc_internal(
                u.immutable().key,
                clamp(wgp),
                llx_scx::pack_ptr(n1),
                llx_scx::pack_ptr(n2),
            );
            if self.domain.scx(
                ScxRequest::new(
                    &[sh, sgp, sp, su],
                    FieldId::new(0, hd),
                    llx_scx::pack_ptr(n),
                )
                .finalize(1)
                .finalize(2)
                .finalize(3),
                guard,
            ) {
                unsafe {
                    self.domain.retire(gp as *const Node<K, V>, guard);
                    self.domain.retire(p as *const Node<K, V>, guard);
                    self.domain.retire(u as *const Node<K, V>, guard);
                }
                true
            } else {
                unsafe {
                    self.domain.dealloc(n);
                    self.domain.dealloc(n1);
                    self.domain.dealloc(n2);
                }
                false
            }
        }
    }

    /// Fix an overweight violation at `u` (`w(u) >= 2`): `p` is the
    /// parent, `pp` its parent (pointer owner), `ppp` one level above
    /// (needed only when the fix degenerates to a red-red fix around the
    /// sibling).
    ///
    /// Case analysis over the sibling `s` and its children (weighted
    /// path sums make it exhaustive — see module docs).
    fn fix_overweight(
        &self,
        ppp: Option<&Node<K, V>>,
        pp: &Node<K, V>,
        p: &Node<K, V>,
        u: &Node<K, V>,
        guard: &Guard,
    ) -> bool {
        let (Some(spp), Some(sp), Some(su)) = (
            self.domain.llx(pp, guard).snapshot(),
            self.domain.llx(p, guard).snapshot(),
            self.domain.llx(u, guard).snapshot(),
        ) else {
            return false;
        };
        let Some(ppd) = Self::side_of(&spp, p) else {
            return false;
        };
        let Some(ud) = Self::side_of(&sp, u) else {
            return false;
        };
        let wu = u.immutable().weight;
        let wp = p.immutable().weight;
        if wu < 2 {
            return false; // stale
        }
        let s: &Node<K, V> = unsafe { self.domain.deref(sp.value(1 - ud), guard) };
        let Some(ss) = self.domain.llx(s, guard).snapshot() else {
            return false;
        };
        let ws = s.immutable().weight;
        let at_entry = std::ptr::eq(pp, self.root as *const Node<K, V>);
        let clamp = |w: u32| if at_entry { w.max(1) } else { w };

        if ws == 0 {
            // Sibling red ⇒ internal (leaves always weigh >= 1).
            if is_leaf(s) {
                return false; // unreachable in a sum-valid tree; stale
            }
            if wp == 0 {
                // Red-red (p, s): fix it first; u (overweight) is the
                // uncle and is black, so RB1/RB2 applies at s.
                return self.fix_red_red(ppp, pp, p, s, guard);
            }
            let a: &Node<K, V> = unsafe { self.domain.deref(ss.value(LEFT), guard) };
            let b: &Node<K, V> = unsafe { self.domain.deref(ss.value(RIGHT), guard) };
            if a.immutable().weight == 0 {
                // Red-red at a (inside s): gp = p, parent = s.
                return self.fix_red_red(Some(pp), p, s, a, guard);
            }
            if b.immutable().weight == 0 {
                return self.fix_red_red(Some(pp), p, s, b, guard);
            }
            // W-RED: rotate so u's sibling becomes black; u's violation
            // persists (one level deeper) and the next walk fixes it.
            // u left: t = (s.key, wp){ (p.key, 0){u, a}, b }.
            let n_inner = if ud == LEFT {
                self.alloc_internal(p.immutable().key, 0, sp.value(ud), ss.value(LEFT))
            } else {
                self.alloc_internal(p.immutable().key, 0, ss.value(RIGHT), sp.value(ud))
            };
            let t = if ud == LEFT {
                self.alloc_internal(
                    s.immutable().key,
                    clamp(wp),
                    llx_scx::pack_ptr(n_inner),
                    ss.value(RIGHT),
                )
            } else {
                self.alloc_internal(
                    s.immutable().key,
                    clamp(wp),
                    ss.value(LEFT),
                    llx_scx::pack_ptr(n_inner),
                )
            };
            // V order: pp, p, then p's children left-right.
            let v = if ud == LEFT {
                [spp, sp, su, ss]
            } else {
                [spp, sp, ss, su]
            };
            // u is *not* removed (it is re-linked), so it is not in R;
            // it still must be in V so its subtree cannot change shape
            // under us... it is not modified either — it simply moves.
            // Only p and s are replaced.
            let s_index = if ud == LEFT { 3 } else { 2 };
            if self.domain.scx(
                ScxRequest::new(&v, FieldId::new(0, ppd), llx_scx::pack_ptr(t))
                    .finalize(1)
                    .finalize(s_index),
                guard,
            ) {
                unsafe {
                    self.domain.retire(p as *const Node<K, V>, guard);
                    self.domain.retire(s as *const Node<K, V>, guard);
                }
                true
            } else {
                unsafe {
                    self.domain.dealloc(t);
                    self.domain.dealloc(n_inner);
                }
                false
            }
        } else {
            // Sibling black. Nephew colors decide.
            let (push, far_red) = if ws >= 2 {
                (true, false)
            } else if is_leaf(s) {
                return false; // unreachable in a sum-valid tree; stale
            } else {
                let a: &Node<K, V> = unsafe { self.domain.deref(ss.value(LEFT), guard) };
                let b: &Node<K, V> = unsafe { self.domain.deref(ss.value(RIGHT), guard) };
                let (near, far) = if ud == LEFT { (a, b) } else { (b, a) };
                if far.immutable().weight == 0 {
                    (false, true)
                } else if near.immutable().weight == 0 {
                    (false, false)
                } else {
                    (true, false) // both nephews black: PUSH
                }
            };

            if push {
                // PUSH: u - 1, s - 1, p + 1.
                let u_copy = self.copy_with_weight(&su, wu - 1);
                let s_copy = self.copy_with_weight(&ss, ws - 1);
                let (lw, rw) = if ud == LEFT {
                    (llx_scx::pack_ptr(u_copy), llx_scx::pack_ptr(s_copy))
                } else {
                    (llx_scx::pack_ptr(s_copy), llx_scx::pack_ptr(u_copy))
                };
                let n = self.alloc_internal(p.immutable().key, clamp(wp + 1), lw, rw);
                let v = if ud == LEFT {
                    [spp, sp, su, ss]
                } else {
                    [spp, sp, ss, su]
                };
                if self.domain.scx(
                    ScxRequest::new(&v, FieldId::new(0, ppd), llx_scx::pack_ptr(n))
                        .finalize(1)
                        .finalize(2)
                        .finalize(3),
                    guard,
                ) {
                    unsafe {
                        self.domain.retire(p as *const Node<K, V>, guard);
                        self.domain.retire(u as *const Node<K, V>, guard);
                        self.domain.retire(s as *const Node<K, V>, guard);
                    }
                    true
                } else {
                    unsafe {
                        self.domain.dealloc(n);
                        self.domain.dealloc(u_copy);
                        self.domain.dealloc(s_copy);
                    }
                    false
                }
            } else if far_red {
                // W-FAR: single rotation towards u; far nephew gets
                // weight 1; u loses one. (u left shown; mirrored.)
                // t = (s.key, wp){ (p.key, 1){u', near}, far' }.
                let far_word = if ud == LEFT {
                    ss.value(RIGHT)
                } else {
                    ss.value(LEFT)
                };
                let near_word = if ud == LEFT {
                    ss.value(LEFT)
                } else {
                    ss.value(RIGHT)
                };
                let far: &Node<K, V> = unsafe { self.domain.deref(far_word, guard) };
                let Some(sfar) = self.domain.llx(far, guard).snapshot() else {
                    return false;
                };
                if far.immutable().weight != 0 {
                    return false; // stale
                }
                let u_copy = self.copy_with_weight(&su, wu - 1);
                let far_copy = self.copy_with_weight(&sfar, 1);
                let (n1, t) = if ud == LEFT {
                    let n1 = self.alloc_internal(
                        p.immutable().key,
                        1,
                        llx_scx::pack_ptr(u_copy),
                        near_word,
                    );
                    let t = self.alloc_internal(
                        s.immutable().key,
                        clamp(wp),
                        llx_scx::pack_ptr(n1),
                        llx_scx::pack_ptr(far_copy),
                    );
                    (n1, t)
                } else {
                    let n1 = self.alloc_internal(
                        p.immutable().key,
                        1,
                        near_word,
                        llx_scx::pack_ptr(u_copy),
                    );
                    let t = self.alloc_internal(
                        s.immutable().key,
                        clamp(wp),
                        llx_scx::pack_ptr(far_copy),
                        llx_scx::pack_ptr(n1),
                    );
                    (n1, t)
                };
                // V: pp, p, children of p left-right, then far (below s).
                let v = if ud == LEFT {
                    [spp, sp, su, ss, sfar]
                } else {
                    [spp, sp, ss, su, sfar]
                };
                let (ui, si) = if ud == LEFT { (2, 3) } else { (3, 2) };
                if self.domain.scx(
                    ScxRequest::new(&v, FieldId::new(0, ppd), llx_scx::pack_ptr(t))
                        .finalize(1)
                        .finalize(ui)
                        .finalize(si)
                        .finalize(4),
                    guard,
                ) {
                    unsafe {
                        self.domain.retire(p as *const Node<K, V>, guard);
                        self.domain.retire(u as *const Node<K, V>, guard);
                        self.domain.retire(s as *const Node<K, V>, guard);
                        self.domain.retire(far as *const Node<K, V>, guard);
                    }
                    true
                } else {
                    unsafe {
                        self.domain.dealloc(t);
                        self.domain.dealloc(n1);
                        self.domain.dealloc(u_copy);
                        self.domain.dealloc(far_copy);
                    }
                    false
                }
            } else {
                // W-NEAR: double rotation through the red near nephew.
                // (u left shown): t = (near.key, wp){ (p.key, 1){u',
                // near.left}, (s.key, 1){near.right, far} }.
                let near_word = if ud == LEFT {
                    ss.value(LEFT)
                } else {
                    ss.value(RIGHT)
                };
                let far_word = if ud == LEFT {
                    ss.value(RIGHT)
                } else {
                    ss.value(LEFT)
                };
                let near: &Node<K, V> = unsafe { self.domain.deref(near_word, guard) };
                let Some(snear) = self.domain.llx(near, guard).snapshot() else {
                    return false;
                };
                if near.immutable().weight != 0 {
                    return false; // stale
                }
                let u_copy = self.copy_with_weight(&su, wu - 1);
                let (n1, n2, t) = if ud == LEFT {
                    let n1 = self.alloc_internal(
                        p.immutable().key,
                        1,
                        llx_scx::pack_ptr(u_copy),
                        snear.value(LEFT),
                    );
                    let n2 =
                        self.alloc_internal(s.immutable().key, 1, snear.value(RIGHT), far_word);
                    let t = self.alloc_internal(
                        near.immutable().key,
                        clamp(wp),
                        llx_scx::pack_ptr(n1),
                        llx_scx::pack_ptr(n2),
                    );
                    (n1, n2, t)
                } else {
                    let n1 = self.alloc_internal(s.immutable().key, 1, far_word, snear.value(LEFT));
                    let n2 = self.alloc_internal(
                        p.immutable().key,
                        1,
                        snear.value(RIGHT),
                        llx_scx::pack_ptr(u_copy),
                    );
                    let t = self.alloc_internal(
                        near.immutable().key,
                        clamp(wp),
                        llx_scx::pack_ptr(n1),
                        llx_scx::pack_ptr(n2),
                    );
                    (n1, n2, t)
                };
                let v = if ud == LEFT {
                    [spp, sp, su, ss, snear]
                } else {
                    [spp, sp, ss, su, snear]
                };
                let (ui, si) = if ud == LEFT { (2, 3) } else { (3, 2) };
                if self.domain.scx(
                    ScxRequest::new(&v, FieldId::new(0, ppd), llx_scx::pack_ptr(t))
                        .finalize(1)
                        .finalize(ui)
                        .finalize(si)
                        .finalize(4),
                    guard,
                ) {
                    unsafe {
                        self.domain.retire(p as *const Node<K, V>, guard);
                        self.domain.retire(u as *const Node<K, V>, guard);
                        self.domain.retire(s as *const Node<K, V>, guard);
                        self.domain.retire(near as *const Node<K, V>, guard);
                    }
                    true
                } else {
                    unsafe {
                        self.domain.dealloc(t);
                        self.domain.dealloc(n1);
                        self.domain.dealloc(n2);
                        self.domain.dealloc(u_copy);
                    }
                    false
                }
            }
        }
    }

    /// The smallest user key and its value (traversal semantics).
    pub fn first_key_value(&self) -> Option<(K, V)> {
        let guard = llx_scx::pin();
        crate::node::extreme_leaf(&self.domain, self.root, LEFT, &guard)
    }

    /// The largest user key and its value (traversal semantics).
    pub fn last_key_value(&self) -> Option<(K, V)> {
        let guard = llx_scx::pin();
        crate::node::extreme_leaf(&self.domain, self.root, RIGHT, &guard)
    }

    /// Number of user keys (traversal semantics).
    pub fn len(&self) -> usize {
        self.fold(0, |acc, _, _| acc + 1)
    }

    /// True if a traversal finds no user keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold over `(key, value)` pairs in ascending key order (traversal
    /// semantics).
    pub fn fold<A, F: FnMut(A, K, &V) -> A>(&self, init: A, mut f: F) -> A {
        let guard = llx_scx::pin();
        let mut acc = init;
        let mut stack: Vec<&Node<K, V>> = vec![unsafe { &*self.root }];
        while let Some(n) = stack.pop() {
            if is_leaf(n) {
                let info = n.immutable();
                if let (TreeKey::Key(k), Some(v)) = (&info.key, &info.value) {
                    acc = f(acc, *k, v);
                }
            } else {
                stack.push(unsafe { self.domain.deref(n.read(RIGHT), &guard) });
                stack.push(unsafe { self.domain.deref(n.read(LEFT), &guard) });
            }
        }
        acc
    }

    /// Fold over the `(key, value)` pairs with keys in the inclusive
    /// range `[lo, hi]`, ascending, over a **consistent snapshot**: an
    /// in-order walk that LLXs every visited node, prunes subtrees
    /// disjoint from the range, and validates the visited set with one
    /// VLX, retrying on conflict (see `scan` module docs). Rebalancing
    /// SCXs on visited nodes also trigger retries. `lo > hi` folds
    /// nothing.
    pub fn fold_range<A, F: FnMut(A, K, &V) -> A>(&self, lo: K, hi: K, init: A, f: F) -> A {
        crate::scan::fold_range_snapshot(&self.domain, self.root, lo, hi, init, f)
    }

    /// Number of keys in `[lo, hi]` at a single linearization point.
    /// See [`ChromaticTree::fold_range`].
    pub fn range_count(&self, lo: K, hi: K) -> u64 {
        self.fold_range(lo, hi, 0u64, |acc, _, _| acc + 1)
    }

    /// One bounded-window snapshot attempt: collect up to `max_keys`
    /// keys of `[from, hi]` (ascending) and validate just the visited
    /// nodes with one VLX; see `Bst::try_scan_window` for the contract.
    /// Rebalancing SCXs on visited nodes also surface as `None`
    /// (retry) — they restructure without changing contents, so the
    /// retry is spurious but safe.
    ///
    /// # Panics
    ///
    /// Panics if `max_keys == 0`.
    pub fn try_scan_window(
        &self,
        from: K,
        hi: K,
        max_keys: usize,
    ) -> Option<crate::ScanWindow<K, V>> {
        crate::scan::scan_window_bstlike(&self.domain, self.root, from, hi, max_keys)
    }

    /// Collect `(key, value)` pairs in ascending key order (traversal
    /// semantics).
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.fold(Vec::new(), |mut v, k, val| {
            v.push((k, val.clone()));
            v
        })
    }

    /// Structural validation (BST shape, sentinels, leaf-orientation,
    /// leaf weights); call any time.
    pub fn check_invariants(&self) -> Result<(), String> {
        crate::validate::check_structure(&self.domain, self.root, true)
    }

    /// Balance validation: no violations and equal weighted path sums in
    /// the user subtree. Call during quiescence (after all updates and
    /// their cleanup returned).
    pub fn check_balanced(&self) -> Result<(), String> {
        let guard = llx_scx::pin();
        let root: &Node<K, V> = unsafe { &*self.root };
        let left: &Node<K, V> = unsafe { self.domain.deref(root.read(LEFT), &guard) };
        crate::validate::check_balanced(&self.domain, left as *const Node<K, V>).map(|_| ())
    }

    /// Height of the tree (edges from the root sentinel to the deepest
    /// leaf).
    pub fn height(&self) -> usize {
        crate::validate::height(&self.domain, self.root)
    }
}

impl<K, V> Drop for ChromaticTree<K, V> {
    fn drop(&mut self) {
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            // SAFETY: owned, exclusive.
            let node = unsafe { Box::from_raw(p as *mut Node<K, V>) };
            for f in [LEFT, RIGHT] {
                let w = node.read(f);
                if w != llx_scx::NULL {
                    stack.push(w as usize as *const Node<K, V>);
                }
            }
        }
    }
}

impl<K: Copy + Ord + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for ChromaticTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.to_vec()).finish()
    }
}
