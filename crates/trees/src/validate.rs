//! Structural and balance validators for the trees (test substrate).
//!
//! The validators take the tree's entry-point pointer, which the
//! wrapping structures guarantee is live for their lifetime.
#![allow(clippy::not_unsafe_ptr_arg_deref)]

use llx_scx::Guard;

use crate::node::{is_leaf, Node, TreeDomain, TreeKey, LEFT, RIGHT};

/// Check leaf-oriented BST structure from `root`:
///
/// * internal nodes have two children; leaves none;
/// * for every internal node `n`: all keys in the left subtree `< n.key`
///   and all keys in the right subtree `>= n.key`;
/// * the root holds `Inf2`; `Inf1`/`Inf2` leaves bracket the user keys;
/// * no reachable node is finalized (marked);
/// * if `chromatic`, additionally: leaf weights `>= 1` and the root's
///   left child has weight `>= 1`.
pub fn check_structure<K: Copy + Ord, V>(
    domain: &TreeDomain<K, V>,
    root: *const Node<K, V>,
    chromatic: bool,
) -> Result<(), String> {
    let guard = llx_scx::pin();
    let root_ref: &Node<K, V> = unsafe { &*root };
    if root_ref.immutable().key != TreeKey::Inf2 {
        return Err("root key must be Inf2".into());
    }
    if is_leaf(root_ref) {
        return Err("root must be internal".into());
    }
    if chromatic {
        let left: &Node<K, V> = unsafe { domain.deref(root_ref.read(LEFT), &guard) };
        if left.immutable().weight == 0 {
            return Err("root's left child must not be red".into());
        }
    }
    check_range(
        domain,
        root_ref,
        None,
        Some(TreeKey::Inf2),
        chromatic,
        &guard,
    )?;
    Ok(())
}

fn check_range<K: Copy + Ord, V>(
    domain: &TreeDomain<K, V>,
    n: &Node<K, V>,
    lo: Option<TreeKey<K>>,
    hi: Option<TreeKey<K>>,
    chromatic: bool,
    guard: &Guard,
) -> Result<(), String> {
    if n.is_marked() {
        return Err("reachable node is finalized".into());
    }
    let key = n.immutable().key;
    if let Some(lo) = lo {
        if key < lo {
            return Err("BST order violated (key below range)".into());
        }
    }
    if let Some(hi) = hi {
        if key > hi {
            return Err("BST order violated (key above range)".into());
        }
    }
    let lw = n.read(LEFT);
    let rw = n.read(RIGHT);
    match (lw == llx_scx::NULL, rw == llx_scx::NULL) {
        (true, true) => {
            if chromatic && n.immutable().weight == 0 {
                return Err("leaf with weight 0".into());
            }
            Ok(())
        }
        (false, false) => {
            let l: &Node<K, V> = unsafe { domain.deref(lw, guard) };
            let r: &Node<K, V> = unsafe { domain.deref(rw, guard) };
            // Left subtree keys < key; right subtree keys >= key. Leaf
            // routing keys equal the internal key on the right side.
            if l.immutable().key >= key {
                return Err("left child key not smaller than parent".into());
            }
            if r.immutable().key < key {
                return Err("right child key smaller than parent".into());
            }
            if chromatic
                && n.immutable().weight == 0
                && (l.immutable().weight == 0 || r.immutable().weight == 0)
            {
                return Err("red-red violation".into());
            }
            check_range(domain, l, lo, Some(key), chromatic, guard)?;
            check_range(domain, r, Some(key), hi, chromatic, guard)
        }
        _ => Err("node with exactly one child".into()),
    }
}

/// Height in edges from `root` to the deepest leaf.
pub fn height<K, V>(domain: &TreeDomain<K, V>, root: *const Node<K, V>) -> usize {
    let guard = llx_scx::pin();
    fn go<K, V>(domain: &TreeDomain<K, V>, n: &Node<K, V>, guard: &Guard) -> usize {
        if is_leaf(n) {
            0
        } else {
            let l: &Node<K, V> = unsafe { domain.deref(n.read(LEFT), guard) };
            let r: &Node<K, V> = unsafe { domain.deref(n.read(RIGHT), guard) };
            1 + go(domain, l, guard).max(go(domain, r, guard))
        }
    }
    go(domain, unsafe { &*root }, &guard)
}

/// Number of leaves under `root`.
pub fn leaf_count<K, V>(domain: &TreeDomain<K, V>, root: *const Node<K, V>) -> usize {
    let guard = llx_scx::pin();
    fn go<K, V>(domain: &TreeDomain<K, V>, n: &Node<K, V>, guard: &Guard) -> usize {
        if is_leaf(n) {
            1
        } else {
            let l: &Node<K, V> = unsafe { domain.deref(n.read(LEFT), guard) };
            let r: &Node<K, V> = unsafe { domain.deref(n.read(RIGHT), guard) };
            go(domain, l, guard) + go(domain, r, guard)
        }
    }
    go(domain, unsafe { &*root }, &guard)
}

/// Chromatic balance validation under `top` (normally the root's left
/// child, the subtree holding all user keys):
///
/// * **no violations**: no red-red edge, no weight `>= 2`;
/// * **equal weighted path sums**: every `top`-to-leaf path has the same
///   total weight (the red-black tree property in weight form).
///
/// Call during quiescence after updates have finished their cleanup.
pub fn check_balanced<K: Copy + Ord, V>(
    domain: &TreeDomain<K, V>,
    top: *const Node<K, V>,
) -> Result<u64, String> {
    let guard = llx_scx::pin();
    fn go<K, V>(
        domain: &TreeDomain<K, V>,
        n: &Node<K, V>,
        parent_red: bool,
        guard: &Guard,
    ) -> Result<u64, String> {
        let w = n.immutable().weight;
        if w >= 2 {
            return Err(format!("overweight violation (weight {w})"));
        }
        if parent_red && w == 0 {
            return Err("red-red violation".into());
        }
        if is_leaf(n) {
            if w == 0 {
                return Err("red leaf".into());
            }
            return Ok(w as u64);
        }
        let l: &Node<K, V> = unsafe { domain.deref(n.read(LEFT), guard) };
        let r: &Node<K, V> = unsafe { domain.deref(n.read(RIGHT), guard) };
        let ls = go(domain, l, w == 0, guard)?;
        let rs = go(domain, r, w == 0, guard)?;
        if ls != rs {
            return Err(format!("unequal weighted path sums ({ls} vs {rs})"));
        }
        Ok(ls + w as u64)
    }
    go(domain, unsafe { &*top }, false, &guard)
}
