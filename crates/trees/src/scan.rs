//! Snapshot range scans for the leaf-oriented LLX/SCX trees.
//!
//! [`Bst`](crate::Bst) and [`ChromaticTree`](crate::ChromaticTree)
//! share the same node layout, so they share one scan routine: an
//! in-order walk that LLXs every node it visits, follows the
//! *snapshotted* child pointers, prunes subtrees disjoint from the
//! range, and validates the whole visited set with a single VLX
//! (paper §3). A successful VLX certifies that every visited node was
//! simultaneously unchanged at the VLX's linearization point; since
//! every insert or delete of an in-range key must perform an SCX on at
//! least one visited node (the leaf's parent is always on the walked
//! path, and SCXs change the node's `info` pointer, which is exactly
//! what VLX checks), the collected leaves are the exact range contents
//! at that point. Pruned subtrees cannot contain in-range keys by the
//! BST routing invariant on the (immutable) keys of validated nodes.

use llx_scx::{Guard, Llx};

use crate::node::{is_leaf, Node, NodeInfo, TreeDomain, TreeKey, LEFT, RIGHT};

type Snap<'g, K, V> = Llx<'g, 2, NodeInfo<K, V>>;

/// One optimistic snapshot attempt: collect the `(key, value)` pairs in
/// `[lo, hi]` (ascending), or `None` if an LLX failed, a visited node
/// was finalized, or the final VLX rejected the visited set.
fn try_collect_range<'g, K: Copy + Ord + 'g, V: Clone + 'g>(
    domain: &TreeDomain<K, V>,
    root: *const Node<K, V>,
    lo: &K,
    hi: &K,
    guard: &'g Guard,
) -> Option<Vec<(K, V)>> {
    let klo = TreeKey::Key(*lo);
    let khi = TreeKey::Key(*hi);
    let mut snaps: Vec<Snap<'g, K, V>> = Vec::new();
    let mut out = Vec::new();
    // SAFETY: the root entry point is never retired.
    let mut stack: Vec<&Node<K, V>> = vec![unsafe { &*root }];
    while let Some(n) = stack.pop() {
        let s = domain.llx(n, guard).snapshot()?;
        snaps.push(s);
        if is_leaf(n) {
            let info = n.immutable();
            if let (TreeKey::Key(k), Some(v)) = (&info.key, &info.value) {
                if *lo <= *k && *k <= *hi {
                    out.push((*k, v.clone()));
                }
            }
            continue;
        }
        let nk = &n.immutable().key;
        // Right subtree holds keys >= nk, left holds keys < nk; push
        // right first so lefts pop first (ascending order). Children
        // come from the snapshot, so the visited subgraph is exactly
        // the one the VLX validates.
        if khi >= *nk {
            // SAFETY: snapshotted child of a reachable internal node,
            // protected by `guard`.
            stack.push(unsafe { domain.deref(s.value(RIGHT), guard) });
        }
        if klo < *nk {
            stack.push(unsafe { domain.deref(s.value(LEFT), guard) });
        }
    }
    if domain.vlx(&snaps) {
        Some(out)
    } else {
        None
    }
}

/// Fold over the `(key, value)` pairs with keys in the inclusive range
/// `[lo, hi]`, ascending, over a VLX-validated consistent snapshot.
/// Retries on conflicting updates; `lo > hi` folds nothing.
pub(crate) fn fold_range_snapshot<K: Copy + Ord, V: Clone, A, F: FnMut(A, K, &V) -> A>(
    domain: &TreeDomain<K, V>,
    root: *const Node<K, V>,
    lo: K,
    hi: K,
    init: A,
    mut f: F,
) -> A {
    if lo > hi {
        return init;
    }
    let pairs = loop {
        let guard = llx_scx::pin();
        if let Some(pairs) = try_collect_range(domain, root, &lo, &hi, &guard) {
            break pairs;
        }
    };
    pairs.into_iter().fold(init, |acc, (k, v)| f(acc, k, &v))
}
