//! Snapshot range scans — whole-range and windowed — for the LLX/SCX
//! trees.
//!
//! All three tree-shaped structures ([`Bst`](crate::Bst),
//! [`ChromaticTree`](crate::ChromaticTree),
//! [`PatriciaTrie`](crate::PatriciaTrie)) share one scan engine: an
//! in-order walk that LLXs every node it visits, follows the
//! *snapshotted* child pointers, prunes subtrees disjoint from the
//! queried interval, and validates the whole visited set with a single
//! VLX (paper §3). A successful VLX certifies that every visited node
//! was simultaneously unchanged at the VLX's linearization point; since
//! every insert or delete of an in-range key must perform an SCX on at
//! least one visited node (the leaf's parent is always on the walked
//! path, and SCXs change the node's `info` pointer, which is exactly
//! what VLX checks), the collected leaves are the exact range contents
//! at that point. Pruned subtrees cannot contain in-range keys by the
//! routing invariant on the (immutable) keys of validated nodes.
//!
//! The engine is **windowed**: a walk may stop after collecting
//! `max_keys` in-range keys and validate just the nodes visited so far.
//! Because the in-order leaf sequence of a leaf-oriented search tree is
//! sorted, every unvisited subtree at that point holds only keys
//! strictly greater than the last collected key, so the validated
//! prefix is the exact contents of the *covered* interval
//! `[from, last_key]` — the per-window atomicity the
//! `conc-set` scan-cursor API is built on. `max_keys = usize::MAX`
//! recovers the whole-range atomic scan.

use llx_scx::{DataRecord, Domain, Guard, Llx};

use crate::node::{is_leaf, Node, TreeDomain, TreeKey, LEFT, RIGHT};

/// One validated scan window: the exact contents of `[from, covered_hi]`
/// at the window's linearization point.
#[derive(Debug, Clone)]
pub struct ScanWindow<K, V> {
    /// `(key, value)` pairs in ascending key order.
    pub pairs: Vec<(K, V)>,
    /// Inclusive upper bound of the interval this window certifies:
    /// the requested `hi` when the walk exhausted the range, else the
    /// last collected key (the window hit its key budget).
    pub covered_hi: K,
    /// Whether the walk exhausted the range — `true` means the cursor
    /// is done, `false` means resume from `covered_hi + 1`.
    pub end: bool,
}

/// What the windowed walk does at one visited (and LLXed) node.
pub(crate) enum Visit<'g, N, K, V> {
    /// A leaf; `Some` if it holds an in-range `(key, value)`.
    Leaf(Option<(K, V)>),
    /// Children to push, in push order (right before left, so lefts pop
    /// first and the walk stays in-order). `None` slots are pruned.
    Push([Option<&'g N>; 2]),
}

/// The per-structure node classifier driving [`try_collect_window`].
type Classify<'c, 'g, const M: usize, I, K, V> =
    &'c mut dyn FnMut(&'g DataRecord<M, I>, &Llx<'g, M, I>) -> Visit<'g, DataRecord<M, I>, K, V>;

/// One optimistic windowed in-order collection shared by the three
/// trees: pop a node, LLX it, let `classify` either yield the node's
/// pair or push the (range-overlapping) children, stop after `max_keys`
/// collected pairs, then VLX the visited set.
///
/// Returns the collected pairs plus whether the walk exhausted the
/// range (`false` = stopped at the key budget with subtrees left), or
/// `None` if an LLX failed, a node was finalized, or the VLX rejected
/// the visited set.
pub(crate) fn try_collect_window<'g, const M: usize, I, K: Copy + Ord, V>(
    domain: &Domain<M, I>,
    start: &'g DataRecord<M, I>,
    max_keys: usize,
    guard: &'g Guard,
    classify: Classify<'_, 'g, M, I, K, V>,
) -> Option<(Vec<(K, V)>, bool)> {
    debug_assert!(max_keys > 0, "a scan window covers at least one key");
    let mut snaps: Vec<Llx<'g, M, I>> = Vec::new();
    let mut out: Vec<(K, V)> = Vec::new();
    let mut stack: Vec<&DataRecord<M, I>> = vec![start];
    while let Some(n) = stack.pop() {
        let s = domain.llx(n, guard).snapshot()?;
        let visit = classify(n, &s);
        snaps.push(s);
        match visit {
            Visit::Leaf(Some(kv)) => {
                out.push(kv);
                if out.len() >= max_keys {
                    break;
                }
            }
            Visit::Leaf(None) => {}
            Visit::Push(children) => {
                for c in children.into_iter().flatten() {
                    stack.push(c);
                }
            }
        }
    }
    // Unvisited stack entries hold only keys past the last collected
    // one (in-order), so the validated prefix covers a full interval.
    let end = stack.is_empty();
    if domain.vlx(&snaps) {
        Some((out, end))
    } else {
        None
    }
}

/// One windowed attempt on the shared [`Bst`](crate::Bst) /
/// [`ChromaticTree`](crate::ChromaticTree) node layout: prune with the
/// BST routing invariant (left subtree `< nk`, right `>= nk`), collect
/// leaves in `[from, hi]`.
pub(crate) fn try_window_bstlike<'g, K: Copy + Ord + 'g, V: Clone + 'g>(
    domain: &TreeDomain<K, V>,
    root: *const Node<K, V>,
    from: &K,
    hi: &K,
    max_keys: usize,
    guard: &'g Guard,
) -> Option<(Vec<(K, V)>, bool)> {
    let klo = TreeKey::Key(*from);
    let khi = TreeKey::Key(*hi);
    // SAFETY: the root entry point is never retired; children come from
    // validated snapshots and are protected by `guard`.
    let start: &Node<K, V> = unsafe { &*root };
    try_collect_window(domain, start, max_keys, guard, &mut |n, s| {
        if is_leaf(n) {
            let info = n.immutable();
            if let (TreeKey::Key(k), Some(v)) = (&info.key, &info.value) {
                if *from <= *k && *k <= *hi {
                    return Visit::Leaf(Some((*k, v.clone())));
                }
            }
            Visit::Leaf(None)
        } else {
            let nk = &n.immutable().key;
            // Right subtree holds keys >= nk, left holds keys < nk.
            Visit::Push([
                if khi >= *nk {
                    // SAFETY: snapshotted child of a reachable internal
                    // node, protected by `guard`.
                    Some(unsafe { domain.deref(s.value(RIGHT), guard) })
                } else {
                    None
                },
                if klo < *nk {
                    // SAFETY: as above.
                    Some(unsafe { domain.deref(s.value(LEFT), guard) })
                } else {
                    None
                },
            ])
        }
    })
}

/// The windowed attempt behind `Bst::try_scan_window` /
/// `ChromaticTree::try_scan_window`: wraps [`try_window_bstlike`] in
/// the [`ScanWindow`] covered-interval bookkeeping.
pub(crate) fn scan_window_bstlike<K: Copy + Ord, V: Clone>(
    domain: &TreeDomain<K, V>,
    root: *const Node<K, V>,
    from: K,
    hi: K,
    max_keys: usize,
) -> Option<ScanWindow<K, V>> {
    assert!(max_keys > 0, "a scan window covers at least one key");
    if from > hi {
        return Some(ScanWindow {
            pairs: Vec::new(),
            covered_hi: hi,
            end: true,
        });
    }
    let guard = llx_scx::pin();
    let (pairs, end) = try_window_bstlike(domain, root, &from, &hi, max_keys, &guard)?;
    let covered_hi = if end {
        hi
    } else {
        pairs.last().expect("a capped window is non-empty").0
    };
    Some(ScanWindow {
        pairs,
        covered_hi,
        end,
    })
}

/// Fold over the `(key, value)` pairs with keys in the inclusive range
/// `[lo, hi]`, ascending, over a VLX-validated consistent snapshot —
/// the whole-range (`max_keys = ∞`) special case of the windowed walk.
/// Retries on conflicting updates; `lo > hi` folds nothing.
pub(crate) fn fold_range_snapshot<K: Copy + Ord, V: Clone, A, F: FnMut(A, K, &V) -> A>(
    domain: &TreeDomain<K, V>,
    root: *const Node<K, V>,
    lo: K,
    hi: K,
    init: A,
    mut f: F,
) -> A {
    if lo > hi {
        return init;
    }
    let pairs = loop {
        let guard = llx_scx::pin();
        if let Some((pairs, _end)) = try_window_bstlike(domain, root, &lo, &hi, usize::MAX, &guard)
        {
            break pairs;
        }
    };
    pairs.into_iter().fold(init, |acc, (k, v)| f(acc, k, &v))
}
