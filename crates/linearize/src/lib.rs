//! A linearizability checker for concurrent histories.
//!
//! The LLX/SCX data structures in this repository claim linearizability
//! (paper Theorem 6 for the multiset; the §6 trees by the same
//! technique). This crate provides the testing substrate to check that
//! claim on real executions: record a [`History`] of timestamped
//! operations, then check it against a sequential [`Spec`] — find a
//! total order of the operations, consistent with real-time order,
//! that the sequential specification accepts.
//!
//! Two backends implement that search:
//!
//! * **WGL** ([`History::check`]) — the Wing & Gong / WGL exhaustive
//!   search over a `u64` pending-set bitmask. Exponential in the worst
//!   case and limited to 64 events; it is the simple *oracle* the
//!   scalable backend is differentially tested against.
//! * **JIT** ([`History::check_jit`], and the per-key-partitioned
//!   [`check_ordered_set`] for ordered-set histories) — a
//!   just-in-time engine ([`jit`] module) with frontier
//!   configurations, memoization and immediate linearization of
//!   minimal pure ops, scaling to histories of thousands of events.
//!   For ordered-set specs the [`partition`] module first splits the
//!   history into key-disjoint groups (compositionality), checks each
//!   independently, and on refutation [`shrink`]s the offending group
//!   to a replayable core printed in the [`fixture`] format.
//!
//! # Example
//!
//! ```
//! use linearize::{History, Event, Spec};
//!
//! /// A register holding a u32, with write/read ops.
//! struct Register;
//! #[derive(Clone, Debug, PartialEq)]
//! enum Op { Write(u32), Read }
//! impl Spec for Register {
//!     type Op = Op;
//!     type Ret = u32;
//!     type State = u32;
//!     fn initial(&self) -> u32 { 0 }
//!     fn apply(&self, s: &u32, op: &Op) -> (u32, u32) {
//!         match op {
//!             Op::Write(v) => (*v, 0),
//!             Op::Read => (*s, *s),
//!         }
//!     }
//! }
//!
//! // Two overlapping ops: a write of 7 and a read returning 7 — the
//! // read can be linearized after the write.
//! let mut h = History::new();
//! h.push(Event { thread: 0, invoked: 0, returned: 10, op: Op::Write(7), ret: 0 });
//! h.push(Event { thread: 1, invoked: 5, returned: 15, op: Op::Read, ret: 7 });
//! assert!(h.check(&Register));
//!
//! // A read returning 7 that *finished before* the write began is not
//! // linearizable.
//! let mut h = History::new();
//! h.push(Event { thread: 1, invoked: 0, returned: 1, op: Op::Read, ret: 7 });
//! h.push(Event { thread: 0, invoked: 2, returned: 3, op: Op::Write(7), ret: 0 });
//! assert!(!h.check(&Register));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fixture;
mod jit;
pub mod partition;
pub mod shrink;

pub use partition::{check_ordered_set, check_ordered_set_with, partition_ordered_set, Violation};
pub use shrink::shrink_events;

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which linearizability backend(s) to run — the value space of the
/// `LLX_LIN_CHECKER` knob (see `workloads::knobs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckerKind {
    /// The exponential WGL bitmask oracle (histories ≤ 64 events).
    Wgl,
    /// The partitioned just-in-time checker (any history length).
    Jit,
    /// Both, cross-checked: WGL runs wherever it can represent the
    /// history (≤ 64 events) and any disagreement with JIT is an
    /// error in its own right.
    Both,
}

impl FromStr for CheckerKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "wgl" => Ok(CheckerKind::Wgl),
            "jit" => Ok(CheckerKind::Jit),
            "both" => Ok(CheckerKind::Both),
            other => Err(format!(
                "unknown checker {other:?} (expected wgl, jit or both)"
            )),
        }
    }
}

/// A sequential specification: deterministic state machine with return
/// values.
pub trait Spec {
    /// Operation descriptions (e.g. `Insert(k, c)`).
    type Op: Clone + Debug;
    /// Return values.
    type Ret: PartialEq + Clone + Debug;
    /// Abstract state; hashed for search memoization.
    type State: Clone + Hash + Eq;
    /// The initial abstract state.
    fn initial(&self) -> Self::State;
    /// Apply `op` to `state`, yielding the new state and the return
    /// value the sequential object would produce.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// One completed operation in a history.
#[derive(Debug, Clone)]
pub struct Event<O, R> {
    /// The executing thread (informational).
    pub thread: usize,
    /// Timestamp at invocation (from [`Clock`] or any monotone source).
    pub invoked: u64,
    /// Timestamp at response; must be `> invoked`.
    pub returned: u64,
    /// The operation performed.
    pub op: O,
    /// The value it returned.
    pub ret: R,
}

/// A monotone logical clock for timestamping events across threads.
///
/// `tick()` is an atomic increment, so two events A, B with
/// `A.returned < B.invoked` are guaranteed to have happened in that real
/// time order.
#[derive(Debug, Default)]
pub struct Clock {
    counter: AtomicU64,
}

impl Clock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next timestamp.
    pub fn tick(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::SeqCst) // ord: SC tick gives the linearization log a total order
    }
}

/// A recorded concurrent history — growable storage, no length cap.
/// (The 64-event `u64` bitmask that used to live here is now an
/// internal detail of the WGL backend; see [`History::check`].)
#[derive(Debug, Clone, Default)]
pub struct History<O, R> {
    events: Vec<Event<O, R>>,
}

impl<O: Clone + Debug, R: PartialEq + Clone + Debug> History<O, R> {
    /// An empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Append a completed event.
    ///
    /// # Panics
    ///
    /// Panics if `returned <= invoked`.
    pub fn push(&mut self, e: Event<O, R>) {
        assert!(e.returned > e.invoked, "response must follow invocation");
        self.events.push(e);
    }

    /// The recorded events, in push order.
    pub fn events(&self) -> &[Event<O, R>] {
        &self.events
    }

    /// Merge per-thread event logs into one history.
    pub fn from_threads(logs: Vec<Vec<Event<O, R>>>) -> Self {
        let mut h = History::new();
        for log in logs {
            for e in log {
                h.push(e);
            }
        }
        h
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Is this history linearizable with respect to `spec`, per the
    /// WGL backend?
    ///
    /// WGL search: repeatedly choose a *minimal* pending operation (one
    /// whose invocation precedes the earliest response among pending
    /// operations), apply it to the abstract state, and check the
    /// recorded return value; backtrack on mismatch. Memoizes visited
    /// `(pending-set, state)` pairs. The pending set is a `u64`
    /// bitmask, so this backend is the small-history oracle.
    ///
    /// # Panics
    ///
    /// Panics if the history holds more than 64 events — use
    /// [`check_jit`](History::check_jit) (or, for ordered-set
    /// histories, [`check_ordered_set`]) for long histories.
    pub fn check<S>(&self, spec: &S) -> bool
    where
        S: Spec<Op = O, Ret = R>,
        S::State: Clone + Hash + Eq,
    {
        let n = self.events.len();
        if n == 0 {
            return true;
        }
        assert!(
            n <= 64,
            "the WGL backend's bitmask holds at most 64 events (history has {n}); \
             use check_jit / check_ordered_set"
        );
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut memo: HashSet<(u64, S::State)> = HashSet::new();
        self.dfs(spec, full, spec.initial(), &mut memo)
    }

    /// Is this history linearizable with respect to `spec`, per the
    /// just-in-time backend ([`jit`] module)? Exact like
    /// [`check`](History::check) but with no length cap; this variant
    /// runs the engine on the whole history. Ordered-set histories
    /// should prefer [`check_ordered_set`], which additionally
    /// partitions by key before searching.
    pub fn check_jit<S>(&self, spec: &S) -> bool
    where
        S: Spec<Op = O, Ret = R>,
        S::State: Clone + Hash + Eq,
    {
        matches!(
            jit::check_events(spec, &self.events, usize::MAX),
            jit::JitOutcome::Linearizable
        )
    }

    fn dfs<S>(
        &self,
        spec: &S,
        pending: u64,
        state: S::State,
        memo: &mut HashSet<(u64, S::State)>,
    ) -> bool
    where
        S: Spec<Op = O, Ret = R>,
        S::State: Clone + Hash + Eq,
    {
        if pending == 0 {
            return true;
        }
        if !memo.insert((pending, state.clone())) {
            return false;
        }
        // Earliest response among pending events bounds which events may
        // linearize first.
        let min_return = self
            .events
            .iter()
            .enumerate()
            .filter(|(i, _)| pending & (1 << i) != 0)
            .map(|(_, e)| e.returned)
            .min()
            .expect("pending non-empty");
        for (i, e) in self.events.iter().enumerate() {
            if pending & (1 << i) == 0 || e.invoked > min_return {
                continue;
            }
            let (next, ret) = spec.apply(&state, &e.op);
            if ret == e.ret && self.dfs(spec, pending & !(1 << i), next, memo) {
                return true;
            }
        }
        false
    }
}

/// Sequential specification of the paper's multiset (§5): `Get`,
/// `Insert`, `Delete` over key/count pairs.
#[derive(Debug, Default, Clone, Copy)]
pub struct MultisetSpec;

/// Operations of [`MultisetSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultisetOp {
    /// Number of occurrences of the key.
    Get(u8),
    /// Add `count` occurrences.
    Insert(u8, u64),
    /// Remove `count` occurrences if present.
    Delete(u8, u64),
}

/// Return values of [`MultisetSpec`]: counts for `Get`, 0/1 booleans for
/// updates.
pub type MultisetRet = u64;

impl Spec for MultisetSpec {
    type Op = MultisetOp;
    type Ret = MultisetRet;
    type State = std::collections::BTreeMap<u8, u64>;

    fn initial(&self) -> Self::State {
        Default::default()
    }

    fn apply(&self, s: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        match op {
            MultisetOp::Get(k) => (s.clone(), s.get(k).copied().unwrap_or(0)),
            MultisetOp::Insert(k, c) => {
                let mut t = s.clone();
                *t.entry(*k).or_insert(0) += c;
                (t, 1)
            }
            MultisetOp::Delete(k, c) => {
                let mut t = s.clone();
                match t.get_mut(k) {
                    Some(cur) if *cur > *c => {
                        *cur -= c;
                        (t, 1)
                    }
                    Some(cur) if *cur == *c => {
                        t.remove(k);
                        (t, 1)
                    }
                    _ => (s.clone(), 0),
                }
            }
        }
    }
}

/// Sequential specification shared by every structure behind the
/// `ConcurrentOrderedSet` trait (`conc-set` crate): an ordered set of
/// `u64` keys with either *counting* (multiset, paper §5) or *distinct*
/// (set/dictionary, paper §6) semantics.
///
/// Return values are occurrence deltas: `Get` returns the count,
/// `Insert` the number of occurrences added, `Remove` the number
/// removed — matching the trait's contract, so one spec checks all six
/// structures.
#[derive(Debug, Clone, Copy)]
pub struct OrderedSetSpec {
    /// `true` for multiset (counting) semantics: `Insert(k, c)` always
    /// adds `c` occurrences and `Remove(k, c)` removes `c` iff at least
    /// `c` are present. `false` for distinct-set semantics: at most one
    /// occurrence per key; `count` arguments beyond presence are
    /// ignored.
    pub counting: bool,
}

/// Operations of [`OrderedSetSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderedSetOp {
    /// Occurrences of the key.
    Get(u64),
    /// Add occurrences of the key.
    Insert(u64, u64),
    /// Remove occurrences of the key.
    Remove(u64, u64),
    /// Total occurrences over the inclusive key range `[lo, hi]`,
    /// observed at a single linearization point (the trait's
    /// `range_count`). `lo > hi` denotes the empty range.
    RangeSum(u64, u64),
    /// Total occurrences over `[lo, hi]` observed by a **windowed**
    /// scan with at most `window` keys per validated window (the
    /// trait's `range_count_windowed`).
    ///
    /// This operation is deliberately *weaker* than [`RangeSum`]: it
    /// has no single linearization point. Its specification is that
    /// the scan decomposes into a sequence of per-window observations,
    /// each of which is an atomic [`RangeSum`] over its own
    /// sub-interval with its **own** linearization point, the
    /// sub-intervals tiling `[lo, hi]` in ascending order and each
    /// window's point falling inside that window's real-time span. Any
    /// interleaving of other operations *between* windows is
    /// admissible — so the total may equal no single state's range sum.
    ///
    /// Consequently a concurrent history must record a windowed scan
    /// as its per-window `RangeSum` events (one event per emitted
    /// window, timestamped individually — see [`record_round_events`]),
    /// never as one `WindowedRangeSum` event. [`OrderedSetSpec`] still
    /// gives the variant a sequential meaning (the plain range sum:
    /// with no concurrent writers every admissible interleaving
    /// produces exactly that total), which is what sequential tapes
    /// and quiescent checks use.
    WindowedRangeSum(u64, u64, u64),
}

impl Spec for OrderedSetSpec {
    type Op = OrderedSetOp;
    type Ret = u64;
    type State = std::collections::BTreeMap<u64, u64>;

    fn initial(&self) -> Self::State {
        Default::default()
    }

    fn apply(&self, s: &Self::State, op: &Self::Op) -> (Self::State, u64) {
        match op {
            OrderedSetOp::Get(k) => (s.clone(), s.get(k).copied().unwrap_or(0)),
            OrderedSetOp::Insert(k, c) => {
                let mut t = s.clone();
                if self.counting {
                    *t.entry(*k).or_insert(0) += c;
                    (t, *c)
                } else if t.contains_key(k) {
                    (t, 0)
                } else {
                    t.insert(*k, 1);
                    (t, 1)
                }
            }
            OrderedSetOp::Remove(k, c) => {
                let mut t = s.clone();
                if self.counting {
                    match t.get_mut(k) {
                        Some(cur) if *cur > *c => {
                            *cur -= c;
                            (t, *c)
                        }
                        Some(cur) if *cur == *c => {
                            t.remove(k);
                            (t, *c)
                        }
                        _ => (s.clone(), 0),
                    }
                } else if t.remove(k).is_some() {
                    (t, 1)
                } else {
                    (t, 0)
                }
            }
            OrderedSetOp::RangeSum(lo, hi) | OrderedSetOp::WindowedRangeSum(lo, hi, _) => {
                let sum = if lo > hi {
                    0
                } else {
                    s.range(lo..=hi).map(|(_, c)| c).sum()
                };
                (s.clone(), sum)
            }
        }
    }
}

/// Record one concurrent round against `structure`: `threads` threads
/// each perform `ops_per_thread` operations generated by `gen_op` and
/// executed by `run_op`, timestamped with a shared [`Clock`]. The
/// returned history is ready for [`History::check`].
///
/// `gen_op` receives `(thread, op_index, rng_word)` where `rng_word` is
/// a per-call deterministic 64-bit value derived from `seed`, so rounds
/// are reproducible. Threads start together on a barrier to maximize
/// real overlap. Keep `threads * ops_per_thread` within the WGL
/// backend's 64-event budget if the round will be checked with
/// [`History::check`]; the JIT backend ([`check_ordered_set`],
/// [`History::check_jit`]) takes rounds of thousands of events.
///
/// This is the driver previously hand-rolled per structure in the
/// repository's `tests/linearizability.rs`; it is generic so one test
/// can sweep every implementation of a spec.
pub fn record_round<S, O, R>(
    structure: &S,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
    gen_op: impl Fn(usize, usize, u64) -> O + Copy + Send,
    run_op: impl Fn(&S, &O) -> R + Copy + Send,
) -> History<O, R>
where
    S: Sync + ?Sized,
    O: Clone + Debug + Send,
    R: PartialEq + Clone + Debug + Send,
{
    record_round_events(
        structure,
        threads,
        ops_per_thread,
        seed,
        gen_op,
        move |s, op, thread, clock| {
            let invoked = clock.tick();
            let ret = run_op(s, op);
            let returned = clock.tick();
            vec![Event {
                thread,
                invoked,
                returned,
                op: op.clone(),
                ret,
            }]
        },
    )
}

/// Like [`record_round`], but `run_op` timestamps for itself and may
/// record **several** events per generated operation — the recording
/// primitive for operations without a single linearization point, such
/// as [`OrderedSetOp::WindowedRangeSum`]: the runner drives the scan
/// cursor and records each emitted window as its own atomic
/// [`OrderedSetOp::RangeSum`] event (ticking the shared [`Clock`]
/// around each window attempt), so the checker verifies exactly the
/// claimed semantics — every window individually matches some state in
/// its own real-time span, with writers free to interleave between
/// windows.
///
/// `run_op` receives `(structure, op, thread, clock)` and returns the
/// completed events; returning an empty vector records nothing (e.g. a
/// window attempt that only retried observed nothing).
pub fn record_round_events<S, O, R>(
    structure: &S,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
    gen_op: impl Fn(usize, usize, u64) -> O + Copy + Send,
    run_op: impl Fn(&S, &O, usize, &Clock) -> Vec<Event<O, R>> + Copy + Send,
) -> History<O, R>
where
    S: Sync + ?Sized,
    O: Clone + Debug + Send,
    R: PartialEq + Clone + Debug + Send,
{
    let clock = Clock::new();
    let barrier = std::sync::Barrier::new(threads);
    let logs: Vec<Vec<Event<O, R>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let clock = &clock;
                let barrier = &barrier;
                scope.spawn(move || {
                    // SplitMix64 stream per (seed, thread): cheap,
                    // deterministic, and dependency-free.
                    let mut x = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(t as u64 + 1);
                    let mut split = move || {
                        x = x.wrapping_add(0x9E3779B97F4A7C15);
                        let mut z = x;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                        z ^ (z >> 31)
                    };
                    let mut log = Vec::with_capacity(ops_per_thread);
                    barrier.wait();
                    for i in 0..ops_per_thread {
                        let op = gen_op(t, i, split());
                        log.extend(run_op(structure, &op, t, clock));
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    History::from_threads(logs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let c = Clock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<MultisetOp, u64> = History::new();
        assert!(h.check(&MultisetSpec));
    }

    #[test]
    fn sequential_multiset_history_checks() {
        let mut h = History::new();
        h.push(Event {
            thread: 0,
            invoked: 0,
            returned: 1,
            op: MultisetOp::Insert(1, 2),
            ret: 1,
        });
        h.push(Event {
            thread: 0,
            invoked: 2,
            returned: 3,
            op: MultisetOp::Get(1),
            ret: 2,
        });
        h.push(Event {
            thread: 0,
            invoked: 4,
            returned: 5,
            op: MultisetOp::Delete(1, 2),
            ret: 1,
        });
        h.push(Event {
            thread: 0,
            invoked: 6,
            returned: 7,
            op: MultisetOp::Get(1),
            ret: 0,
        });
        assert!(h.check(&MultisetSpec));
    }

    #[test]
    fn wrong_sequential_value_rejected() {
        let mut h = History::new();
        h.push(Event {
            thread: 0,
            invoked: 0,
            returned: 1,
            op: MultisetOp::Insert(1, 2),
            ret: 1,
        });
        h.push(Event {
            thread: 0,
            invoked: 2,
            returned: 3,
            op: MultisetOp::Get(1),
            ret: 3,
        });
        assert!(!h.check(&MultisetSpec));
    }

    #[test]
    fn overlapping_ops_use_flexible_order() {
        // Get overlaps Insert: may see 0 or 2.
        for seen in [0u64, 2] {
            let mut h = History::new();
            h.push(Event {
                thread: 0,
                invoked: 0,
                returned: 10,
                op: MultisetOp::Insert(1, 2),
                ret: 1,
            });
            h.push(Event {
                thread: 1,
                invoked: 5,
                returned: 6,
                op: MultisetOp::Get(1),
                ret: seen,
            });
            assert!(h.check(&MultisetSpec), "seen = {seen}");
        }
        // But 1 is impossible.
        let mut h = History::new();
        h.push(Event {
            thread: 0,
            invoked: 0,
            returned: 10,
            op: MultisetOp::Insert(1, 2),
            ret: 1,
        });
        h.push(Event {
            thread: 1,
            invoked: 5,
            returned: 6,
            op: MultisetOp::Get(1),
            ret: 1,
        });
        assert!(!h.check(&MultisetSpec));
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Get(1) = 2 strictly before the only Insert: not linearizable.
        let mut h = History::new();
        h.push(Event {
            thread: 1,
            invoked: 0,
            returned: 1,
            op: MultisetOp::Get(1),
            ret: 2,
        });
        h.push(Event {
            thread: 0,
            invoked: 2,
            returned: 3,
            op: MultisetOp::Insert(1, 2),
            ret: 1,
        });
        assert!(!h.check(&MultisetSpec));
    }

    #[test]
    fn failed_delete_requires_insufficient_count() {
        let mut h = History::new();
        h.push(Event {
            thread: 0,
            invoked: 0,
            returned: 1,
            op: MultisetOp::Insert(1, 1),
            ret: 1,
        });
        h.push(Event {
            thread: 0,
            invoked: 2,
            returned: 3,
            op: MultisetOp::Delete(1, 2),
            ret: 0,
        });
        h.push(Event {
            thread: 0,
            invoked: 4,
            returned: 5,
            op: MultisetOp::Delete(1, 1),
            ret: 1,
        });
        assert!(h.check(&MultisetSpec));
    }

    #[test]
    fn ordered_set_spec_counting_semantics() {
        let spec = OrderedSetSpec { counting: true };
        let s0 = spec.initial();
        let (s1, r) = spec.apply(&s0, &OrderedSetOp::Insert(3, 2));
        assert_eq!(r, 2);
        let (s2, r) = spec.apply(&s1, &OrderedSetOp::Insert(3, 2));
        assert_eq!(r, 2);
        assert_eq!(spec.apply(&s2, &OrderedSetOp::Get(3)).1, 4);
        let (s3, r) = spec.apply(&s2, &OrderedSetOp::Remove(3, 3));
        assert_eq!(r, 3);
        assert_eq!(spec.apply(&s3, &OrderedSetOp::Get(3)).1, 1);
        assert_eq!(
            spec.apply(&s3, &OrderedSetOp::Remove(3, 2)).1,
            0,
            "short count fails whole"
        );
    }

    #[test]
    fn ordered_set_spec_range_sum() {
        let spec = OrderedSetSpec { counting: true };
        let mut s = spec.initial();
        for (k, c) in [(1u64, 2u64), (3, 1), (7, 4)] {
            s = spec.apply(&s, &OrderedSetOp::Insert(k, c)).0;
        }
        assert_eq!(spec.apply(&s, &OrderedSetOp::RangeSum(0, 10)).1, 7);
        assert_eq!(spec.apply(&s, &OrderedSetOp::RangeSum(2, 6)).1, 1);
        assert_eq!(
            spec.apply(&s, &OrderedSetOp::RangeSum(3, 3)).1,
            1,
            "single key"
        );
        assert_eq!(
            spec.apply(&s, &OrderedSetOp::RangeSum(4, 6)).1,
            0,
            "empty interval"
        );
        assert_eq!(
            spec.apply(&s, &OrderedSetOp::RangeSum(9, 2)).1,
            0,
            "lo > hi"
        );
        // A RangeSum overlapping an insert may or may not see it.
        let mut h = History::new();
        h.push(Event {
            thread: 0,
            invoked: 0,
            returned: 10,
            op: OrderedSetOp::Insert(5, 2),
            ret: 2,
        });
        h.push(Event {
            thread: 1,
            invoked: 5,
            returned: 6,
            op: OrderedSetOp::RangeSum(0, 9),
            ret: 2,
        });
        assert!(h.check(&spec));
        let mut h = History::new();
        h.push(Event {
            thread: 0,
            invoked: 0,
            returned: 10,
            op: OrderedSetOp::Insert(5, 2),
            ret: 2,
        });
        h.push(Event {
            thread: 1,
            invoked: 5,
            returned: 6,
            op: OrderedSetOp::RangeSum(0, 9),
            ret: 1,
        });
        assert!(!h.check(&spec), "a torn scan sum is not linearizable");
    }

    #[test]
    fn ordered_set_spec_distinct_semantics() {
        let spec = OrderedSetSpec { counting: false };
        let s0 = spec.initial();
        let (s1, r) = spec.apply(&s0, &OrderedSetOp::Insert(3, 2));
        assert_eq!(r, 1, "insert-if-absent adds one occurrence");
        assert_eq!(
            spec.apply(&s1, &OrderedSetOp::Insert(3, 5)).1,
            0,
            "already present"
        );
        assert_eq!(spec.apply(&s1, &OrderedSetOp::Get(3)).1, 1);
        let (s2, r) = spec.apply(&s1, &OrderedSetOp::Remove(3, 7));
        assert_eq!(r, 1);
        assert_eq!(spec.apply(&s2, &OrderedSetOp::Remove(3, 1)).1, 0);
    }

    #[test]
    fn record_round_produces_checkable_history() {
        // Drive a trivially linearizable structure (a mutex-protected
        // map with counting semantics) through the generic driver.
        let set = std::sync::Mutex::new(std::collections::BTreeMap::<u64, u64>::new());
        let h = record_round(
            &set,
            3,
            5,
            42,
            |_, _, r| match r % 4 {
                0 => OrderedSetOp::Insert(r % 2, 1 + r % 2),
                1 => OrderedSetOp::Remove(r % 2, 1),
                2 => OrderedSetOp::RangeSum(0, r % 3),
                _ => OrderedSetOp::Get(r % 2),
            },
            |s, op| {
                let mut m = s.lock().unwrap();
                match op {
                    OrderedSetOp::Get(k) => m.get(k).copied().unwrap_or(0),
                    OrderedSetOp::Insert(k, c) => {
                        *m.entry(*k).or_insert(0) += c;
                        *c
                    }
                    OrderedSetOp::Remove(k, c) => match m.get_mut(k) {
                        Some(cur) if *cur >= *c => {
                            *cur -= c;
                            if *cur == 0 {
                                m.remove(k);
                            }
                            *c
                        }
                        _ => 0,
                    },
                    OrderedSetOp::RangeSum(lo, hi) | OrderedSetOp::WindowedRangeSum(lo, hi, _) => {
                        if lo > hi {
                            0
                        } else {
                            m.range(lo..=hi).map(|(_, c)| c).sum()
                        }
                    }
                }
            },
        );
        assert_eq!(h.len(), 15);
        assert!(h.check(&OrderedSetSpec { counting: true }));
        // Same histories are reproducible given the same seed.
        assert!(!h.is_empty());
    }
}
