//! Per-key compositional partitioning of ordered-set histories.
//!
//! Point operations on *different* keys of an ordered set commute, and
//! the abstract state ([`OrderedSetSpec`]'s map) is a product of
//! independent per-key counts. Treating each key as its own object,
//! Herlihy & Wing's locality theorem applies: a history is
//! linearizable iff its projection onto every object is. So instead
//! of searching one giant interleaving, the checker partitions the
//! history into **groups** that share no key and checks each group
//! independently with the [JIT engine](crate::jit) — turning one
//! search over `n` events into many searches over `n / #keys`-ish
//! events, each with its own tiny frontier.
//!
//! **The scan caveat:** a range scan ([`OrderedSetOp::RangeSum`])
//! observes every key in its interval at once, so it is one operation
//! over many "objects" and locality no longer separates them. The
//! partitioner therefore merges (union-find) every key the history
//! actually touches inside a scan's interval into the scan's group;
//! overlapping scans chain through shared keys. Keys the history
//! never writes are permanently at count 0 and cannot couple scans —
//! a scan whose interval contains no touched key forms a singleton
//! group whose sum must be 0. In the worst case (every scan spans
//! every key) the whole history degenerates to a single group: the
//! parallel decomposition is lost but correctness is not, since the
//! JIT engine is exact on any group size.

use std::collections::BTreeMap;

use crate::jit::{self, JitOutcome};
use crate::shrink;
use crate::{CheckerKind, Event, History, OrderedSetOp, OrderedSetSpec};

/// A refuted group: the smallest unit of evidence the partitioned
/// checker produces, plus its ddmin-shrunken core.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The full violating group, in recorded order.
    pub events: Vec<Event<OrderedSetOp, u64>>,
    /// The shrinker's fixed point: a (usually tiny) sub-history that
    /// is still not linearizable. See [`crate::shrink::shrink_events`].
    pub minimized: Vec<Event<OrderedSetOp, u64>>,
    /// The spec semantics the group was checked under.
    pub counting: bool,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "non-linearizable group of {} events, minimized to {} (replayable fixture):",
            self.events.len(),
            self.minimized.len()
        )?;
        write!(
            f,
            "{}",
            crate::fixture::format(self.counting, &self.minimized)
        )
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The key set an operation touches, as the partitioner sees it:
/// point ops name one key, scans an inclusive interval (`None` lo > hi
/// = the empty interval).
fn op_interval(op: &OrderedSetOp) -> Option<(u64, u64)> {
    match op {
        OrderedSetOp::Get(k) | OrderedSetOp::Insert(k, _) | OrderedSetOp::Remove(k, _) => {
            Some((*k, *k))
        }
        OrderedSetOp::RangeSum(lo, hi) | OrderedSetOp::WindowedRangeSum(lo, hi, _) => {
            if lo > hi {
                None
            } else {
                Some((*lo, *hi))
            }
        }
    }
}

fn is_point(op: &OrderedSetOp) -> bool {
    matches!(
        op,
        OrderedSetOp::Get(_) | OrderedSetOp::Insert(_, _) | OrderedSetOp::Remove(_, _)
    )
}

/// Partition a history's events into independent groups of indices:
/// two events land in the same group iff they are connected through
/// shared *touched* keys (see the module docs for why untouched keys
/// cannot connect scans). Groups come back in order of first
/// appearance; indices within a group keep recorded order. Scans over
/// intervals containing no point-op key each form their own singleton
/// group.
pub fn partition_ordered_set<R>(events: &[Event<OrderedSetOp, R>]) -> Vec<Vec<usize>> {
    // Distinct point-op keys -> union-find node.
    let mut key_node: BTreeMap<u64, usize> = BTreeMap::new();
    for e in events {
        if is_point(&e.op) {
            if let Some((k, _)) = op_interval(&e.op) {
                let next = key_node.len();
                key_node.entry(k).or_insert(next);
            }
        }
    }
    let mut uf = UnionFind::new(key_node.len());
    // Every event's home node, or None for a singleton (empty-interval
    // scans and scans over untouched regions).
    let homes: Vec<Option<usize>> = events
        .iter()
        .map(|e| {
            let (lo, hi) = op_interval(&e.op)?;
            if is_point(&e.op) {
                return Some(key_node[&lo]);
            }
            let mut in_range = key_node.range(lo..=hi).map(|(_, &node)| node);
            let first = in_range.next()?;
            for node in in_range {
                uf.union(first, node);
            }
            Some(first)
        })
        .collect();
    // Bucket by union-find root, preserving first-appearance order.
    let mut root_group: BTreeMap<usize, usize> = BTreeMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, home) in homes.iter().enumerate() {
        match home {
            Some(node) => {
                let root = uf.find(*node);
                let g = *root_group.entry(root).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[g].push(i);
            }
            None => {
                groups.push(vec![i]);
            }
        }
    }
    groups
}

/// Check an ordered-set history by partitioning it into key-disjoint
/// groups and running the JIT engine on each; on refutation the
/// offending group is ddmin-shrunken before being reported.
///
/// This is the scalable front door: histories of thousands of events
/// check in milliseconds when keys partition well, and still
/// terminate (single group) when they do not.
pub fn check_ordered_set(
    h: &History<OrderedSetOp, u64>,
    spec: &OrderedSetSpec,
) -> Result<(), Violation> {
    check_event_groups(h.events(), spec)
}

fn check_event_groups(
    events: &[Event<OrderedSetOp, u64>],
    spec: &OrderedSetSpec,
) -> Result<(), Violation> {
    for group in partition_ordered_set(events) {
        let sub: Vec<Event<OrderedSetOp, u64>> = group.iter().map(|&i| events[i].clone()).collect();
        match jit::check_events(spec, &sub, usize::MAX) {
            JitOutcome::Linearizable => {}
            JitOutcome::Violation => {
                let minimized = shrink::shrink_events(spec, sub.clone());
                return Err(Violation {
                    events: sub,
                    minimized,
                    counting: spec.counting,
                });
            }
            JitOutcome::OutOfBudget => unreachable!("unbounded check cannot exhaust its budget"),
        }
    }
    Ok(())
}

/// Run the checker selected by `kind` (see [`CheckerKind`]):
///
/// * [`Wgl`](CheckerKind::Wgl) — the exponential bitmask oracle;
///   errors on histories over 64 events instead of panicking.
/// * [`Jit`](CheckerKind::Jit) — the partitioned JIT checker, any
///   length.
/// * [`Both`](CheckerKind::Both) — both backends on histories the
///   WGL oracle can represent (≤ 64 events), **erroring on any
///   disagreement** — a differential check on every round; silently
///   degrades to JIT-only above 64 events.
///
/// `Err` carries a human-readable report; for refutations it embeds
/// the shrunken group as a replayable fixture.
pub fn check_ordered_set_with(
    h: &History<OrderedSetOp, u64>,
    spec: &OrderedSetSpec,
    kind: CheckerKind,
) -> Result<(), String> {
    let jit_verdict = || check_ordered_set(h, spec);
    match kind {
        CheckerKind::Wgl => {
            if h.len() > 64 {
                return Err(format!(
                    "history has {} events; the WGL backend is limited to 64 \
                     (run with LLX_LIN_CHECKER=jit)",
                    h.len()
                ));
            }
            if h.check(spec) {
                Ok(())
            } else {
                // Reuse the JIT shrinker for the report; the backends
                // agree (the differential suite holds them to it).
                match jit_verdict() {
                    Err(v) => Err(format!("WGL: not linearizable\n{v}")),
                    Ok(()) => Err(
                        "checker disagreement: WGL rejects but JIT accepts this history"
                            .to_string(),
                    ),
                }
            }
        }
        CheckerKind::Jit => jit_verdict().map_err(|v| format!("JIT: not linearizable\n{v}")),
        CheckerKind::Both => {
            let jit = jit_verdict();
            if h.len() <= 64 {
                let wgl = h.check(spec);
                if wgl != jit.is_ok() {
                    return Err(format!(
                        "checker disagreement: WGL says {}, JIT says {} on:\n{}",
                        if wgl { "linearizable" } else { "violation" },
                        if jit.is_ok() {
                            "linearizable"
                        } else {
                            "violation"
                        },
                        crate::fixture::format(spec.counting, h.events()),
                    ));
                }
            }
            jit.map_err(|v| format!("not linearizable (WGL and JIT agree)\n{v}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: OrderedSetOp, ret: u64, invoked: u64, returned: u64) -> Event<OrderedSetOp, u64> {
        Event {
            thread: 0,
            invoked,
            returned,
            op,
            ret,
        }
    }

    #[test]
    fn point_ops_partition_by_key() {
        let events = vec![
            ev(OrderedSetOp::Insert(1, 1), 1, 0, 1),
            ev(OrderedSetOp::Insert(9, 1), 1, 2, 3),
            ev(OrderedSetOp::Get(1), 1, 4, 5),
            ev(OrderedSetOp::Remove(9, 1), 1, 6, 7),
        ];
        let groups = partition_ordered_set(&events);
        assert_eq!(groups, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn scans_merge_the_keys_they_touch() {
        let events = vec![
            ev(OrderedSetOp::Insert(1, 1), 1, 0, 1),
            ev(OrderedSetOp::Insert(9, 1), 1, 2, 3),
            ev(OrderedSetOp::Insert(50, 1), 1, 4, 5),
            // Spans keys 1 and 9 but not 50.
            ev(OrderedSetOp::RangeSum(0, 10), 2, 6, 7),
        ];
        let groups = partition_ordered_set(&events);
        assert_eq!(groups.len(), 2);
        let with_scan: Vec<usize> = groups
            .into_iter()
            .find(|g| g.contains(&3))
            .expect("scan is somewhere");
        assert_eq!(with_scan, vec![0, 1, 3]);
    }

    #[test]
    fn scan_over_untouched_region_is_a_singleton() {
        let events = vec![
            ev(OrderedSetOp::Insert(1, 1), 1, 0, 1),
            ev(OrderedSetOp::RangeSum(100, 200), 0, 2, 3),
            // lo > hi: the empty interval touches nothing at all.
            ev(OrderedSetOp::RangeSum(5, 2), 0, 4, 5),
        ];
        let groups = partition_ordered_set(&events);
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn partitioned_check_rejects_cross_group_violation_locally() {
        let spec = OrderedSetSpec { counting: true };
        let mut h = History::new();
        // Key 3 is fine; key 8's get is stale (remove finished first).
        h.push(ev(OrderedSetOp::Insert(3, 1), 1, 0, 1));
        h.push(ev(OrderedSetOp::Insert(8, 2), 2, 2, 3));
        h.push(ev(OrderedSetOp::Remove(8, 2), 2, 4, 5));
        h.push(ev(OrderedSetOp::Get(8), 2, 6, 7));
        h.push(ev(OrderedSetOp::Get(3), 1, 8, 9));
        let v = check_ordered_set(&h, &spec).unwrap_err();
        assert_eq!(v.events.len(), 3, "only key 8's group is reported");
        assert!(v.minimized.len() <= 3);
        assert!(check_ordered_set_with(&h, &spec, CheckerKind::Both).is_err());
    }
}
