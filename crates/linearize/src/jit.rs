//! The just-in-time linearizability engine.
//!
//! The WGL backend in `lib.rs` encodes the pending set as a `u64`
//! bitmask, which caps histories at 64 events — exactly the regime
//! where rare races stay invisible. This module is the scalable
//! backend: the same search (find a total order consistent with real
//! time that the sequential [`Spec`] accepts), reorganized so that
//! recorded rounds of thousands of events check in milliseconds:
//!
//! * **Frontier configurations.** Events are sorted by invocation.
//!   A configuration is `(idx, holes, state)`: every event before
//!   `idx` is linearized except the `holes`, nothing at or after
//!   `idx` is. In a real recorded round at most `threads` operations
//!   overlap at any instant, so `holes` stays tiny and the search is
//!   near-linear in history length instead of exponential.
//! * **Just-in-time pruning of minimal ops.** A schedulable event
//!   whose operation does not change the abstract state and whose
//!   recorded return matches the current state — a successful `get`,
//!   a failed distinct-`insert`, a scan summing to the current range
//!   sum — is linearized *immediately*, without branching. This is
//!   lossless: such an event is minimal (no pending event's response
//!   precedes its invocation, or it would not be schedulable), so any
//!   witness order can be rewritten to put it first (moving it
//!   earlier violates no real-time edge) and, being pure, deleting it
//!   from a witness perturbs nobody else's return value.
//! * **Memoized configurations.** Branching only happens on
//!   state-*changing* candidates; visited `(idx, holes, state)`
//!   triples are memoized so converging interleavings are explored
//!   once.
//!
//! The engine is generic over [`Spec`]; purity is detected
//! semantically (`apply` returns a state equal to the input), so
//! specs need no extra annotations.

use std::collections::HashSet;
use std::hash::Hash;

use crate::{Event, Spec};

/// Verdict of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitOutcome {
    /// A witness order exists: the history is linearizable.
    Linearizable,
    /// The search space is exhausted: no witness order exists.
    Violation,
    /// The configuration budget ran out before the search finished —
    /// the history is neither accepted nor refuted. Only bounded
    /// callers (the shrinker) see this; checking runs unbounded.
    OutOfBudget,
}

/// One search configuration: everything before `idx` (in
/// invocation-sorted order) is linearized except `holes`; `state` is
/// the abstract state reached.
struct Config<St> {
    idx: u32,
    holes: Vec<u32>,
    state: St,
}

/// Check `events` against `spec` with the JIT engine, visiting at most
/// `max_configs` branch configurations.
pub(crate) fn check_events<S>(
    spec: &S,
    events: &[Event<S::Op, S::Ret>],
    max_configs: usize,
) -> JitOutcome
where
    S: Spec,
    S::State: Clone + Hash + Eq,
{
    let n = events.len();
    if n == 0 {
        return JitOutcome::Linearizable;
    }
    // Invocation-sorted view of the history; `order[i]` is the
    // original index of the i-th event by invocation time.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| {
        let e = &events[i as usize];
        (e.invoked, e.returned)
    });
    let ev = |i: usize| &events[order[i] as usize];
    // suffix_min_ret[i] = earliest response among events[i..] — the
    // suffix half of the minimal-op (real-time) eligibility bound.
    let mut suffix_min_ret = vec![u64::MAX; n + 1];
    for i in (0..n).rev() {
        suffix_min_ret[i] = suffix_min_ret[i + 1].min(ev(i).returned);
    }
    // Schedulable events of `cfg`: pending ones whose invocation
    // precedes (or ties) every pending response, i.e. those that may
    // linearize first without violating real-time order.
    let candidates = |cfg: &Config<S::State>| -> Vec<u32> {
        let mut min_ret = suffix_min_ret[cfg.idx as usize];
        for &h in &cfg.holes {
            min_ret = min_ret.min(ev(h as usize).returned);
        }
        let mut cands: Vec<u32> = cfg
            .holes
            .iter()
            .copied()
            .filter(|&h| ev(h as usize).invoked <= min_ret)
            .collect();
        let mut j = cfg.idx as usize;
        while j < n && ev(j).invoked <= min_ret {
            cands.push(j as u32);
            j += 1;
        }
        cands
    };
    // Linearize candidate `c`, preserving the frontier invariant
    // (holes stay strictly below idx).
    let take = |cfg: &Config<S::State>, c: u32, state: S::State| -> Config<S::State> {
        let mut holes = cfg.holes.clone();
        let idx = if c >= cfg.idx {
            holes.extend(cfg.idx..c);
            c + 1
        } else {
            holes.retain(|&h| h != c);
            cfg.idx
        };
        Config { idx, holes, state }
    };
    let done = |cfg: &Config<S::State>| cfg.idx as usize == n && cfg.holes.is_empty();

    let mut memo: HashSet<(u32, Vec<u32>, S::State)> = HashSet::new();
    let mut stack = vec![Config {
        idx: 0,
        holes: Vec::new(),
        state: spec.initial(),
    }];
    let mut visited = 0usize;
    while let Some(mut cfg) = stack.pop() {
        visited += 1;
        if visited > max_configs {
            return JitOutcome::OutOfBudget;
        }
        // JIT phase: greedily linearize pure matching minimal ops.
        // Each take can raise the real-time bound, so recompute.
        loop {
            if done(&cfg) {
                return JitOutcome::Linearizable;
            }
            let mut took = false;
            for c in candidates(&cfg) {
                let e = ev(c as usize);
                let (next, ret) = spec.apply(&cfg.state, &e.op);
                if ret == e.ret && next == cfg.state {
                    cfg = take(&cfg, c, next);
                    took = true;
                    break;
                }
            }
            if !took {
                break;
            }
        }
        if !memo.insert((cfg.idx, cfg.holes.clone(), cfg.state.clone())) {
            continue;
        }
        // Branch phase: state-changing candidates whose recorded
        // return the spec reproduces. (Pure matching candidates were
        // consumed above; mismatching ones cannot linearize *here*,
        // though they may later, under a different branch's state.)
        for c in candidates(&cfg) {
            let e = ev(c as usize);
            let (next, ret) = spec.apply(&cfg.state, &e.op);
            if ret == e.ret && next != cfg.state {
                stack.push(take(&cfg, c, next));
            }
        }
    }
    JitOutcome::Violation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultisetOp, MultisetSpec};

    fn e(
        thread: usize,
        invoked: u64,
        returned: u64,
        op: MultisetOp,
        ret: u64,
    ) -> Event<MultisetOp, u64> {
        Event {
            thread,
            invoked,
            returned,
            op,
            ret,
        }
    }

    #[test]
    fn empty_is_linearizable() {
        assert_eq!(
            check_events(&MultisetSpec, &[], usize::MAX),
            JitOutcome::Linearizable
        );
    }

    #[test]
    fn sequential_tape_accepts_and_corruption_rejects() {
        let mut evs = vec![
            e(0, 0, 1, MultisetOp::Insert(1, 2), 1),
            e(0, 2, 3, MultisetOp::Get(1), 2),
            e(0, 4, 5, MultisetOp::Delete(1, 2), 1),
            e(0, 6, 7, MultisetOp::Get(1), 0),
        ];
        assert_eq!(
            check_events(&MultisetSpec, &evs, usize::MAX),
            JitOutcome::Linearizable
        );
        evs[1].ret = 3;
        assert_eq!(
            check_events(&MultisetSpec, &evs, usize::MAX),
            JitOutcome::Violation
        );
    }

    #[test]
    fn overlap_allows_either_order_but_not_torn_values() {
        for (seen, want) in [
            (0, JitOutcome::Linearizable),
            (2, JitOutcome::Linearizable),
            (1, JitOutcome::Violation),
        ] {
            let evs = vec![
                e(0, 0, 10, MultisetOp::Insert(1, 2), 1),
                e(1, 5, 6, MultisetOp::Get(1), seen),
            ];
            assert_eq!(
                check_events(&MultisetSpec, &evs, usize::MAX),
                want,
                "seen {seen}"
            );
        }
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Get = 2 strictly before the only insert.
        let evs = vec![
            e(1, 0, 1, MultisetOp::Get(1), 2),
            e(0, 2, 3, MultisetOp::Insert(1, 2), 1),
        ];
        assert_eq!(
            check_events(&MultisetSpec, &evs, usize::MAX),
            JitOutcome::Violation
        );
    }

    #[test]
    fn long_low_contention_history_is_fast_and_accepted() {
        // 4 "threads" with interleaved-but-mostly-disjoint windows; a
        // bitmask checker cannot even represent this length.
        let mut evs = Vec::new();
        let mut t = 0u64;
        let mut count = 0u64;
        for i in 0..4096u64 {
            let (op, ret) = if i % 3 == 0 {
                count += 1;
                (MultisetOp::Insert(1, 1), 1)
            } else if i % 3 == 1 {
                (MultisetOp::Get(1), count)
            } else {
                count -= 1;
                (MultisetOp::Delete(1, 1), 1)
            };
            evs.push(e((i % 4) as usize, t, t + 3, op, ret));
            t += 2; // windows overlap the next event's invocation
        }
        assert_eq!(
            check_events(&MultisetSpec, &evs, usize::MAX),
            JitOutcome::Linearizable
        );
    }

    #[test]
    fn budget_surfaces_as_out_of_budget() {
        // Heavily overlapping state-changing ops force branching; a
        // budget of 1 configuration cannot finish them.
        let evs = vec![
            e(0, 0, 100, MultisetOp::Insert(1, 1), 1),
            e(1, 1, 100, MultisetOp::Insert(1, 2), 1),
            e(2, 2, 100, MultisetOp::Insert(1, 3), 1),
            e(3, 3, 99, MultisetOp::Get(1), 6),
        ];
        assert_eq!(
            check_events(&MultisetSpec, &evs, 1),
            JitOutcome::OutOfBudget
        );
        assert_eq!(
            check_events(&MultisetSpec, &evs, usize::MAX),
            JitOutcome::Linearizable
        );
    }
}
