//! A plain-text fixture format for ordered-set histories.
//!
//! One purpose, three consumers: the committed bad-history corpus
//! (`crates/linearize/tests/corpus/*.hist`) is written in it, the
//! shrinker prints minimized violations in it, and the differential
//! harness dumps disagreements in it — so every failure anywhere in
//! the checking stack is a literal you can paste into a `.hist` file
//! and replay.
//!
//! Grammar (line-oriented; `#` starts a comment, blank lines are
//! skipped):
//!
//! ```text
//! semantics counting            # or: semantics distinct
//! <thread> <invoked> <returned> get <k> ret <v>
//! <thread> <invoked> <returned> insert <k> <c> ret <v>
//! <thread> <invoked> <returned> remove <k> <c> ret <v>
//! <thread> <invoked> <returned> rangesum <lo> <hi> ret <v>
//! <thread> <invoked> <returned> winrangesum <lo> <hi> <w> ret <v>
//! ```
//!
//! [`format`] and [`parse`] round-trip.

use crate::{Event, History, OrderedSetOp, OrderedSetSpec};

/// Render `events` (checked under `counting` semantics) as fixture
/// text, one event per line.
pub fn format(counting: bool, events: &[Event<OrderedSetOp, u64>]) -> String {
    let mut out = String::new();
    out.push_str(if counting {
        "semantics counting\n"
    } else {
        "semantics distinct\n"
    });
    for e in events {
        let op = match &e.op {
            OrderedSetOp::Get(k) => format!("get {k}"),
            OrderedSetOp::Insert(k, c) => format!("insert {k} {c}"),
            OrderedSetOp::Remove(k, c) => format!("remove {k} {c}"),
            OrderedSetOp::RangeSum(lo, hi) => format!("rangesum {lo} {hi}"),
            OrderedSetOp::WindowedRangeSum(lo, hi, w) => format!("winrangesum {lo} {hi} {w}"),
        };
        out.push_str(&format!(
            "{} {} {} {op} ret {}\n",
            e.thread, e.invoked, e.returned, e.ret
        ));
    }
    out
}

/// Parse fixture text into its spec and history.
pub fn parse(text: &str) -> Result<(OrderedSetSpec, History<OrderedSetOp, u64>), String> {
    let mut spec: Option<OrderedSetSpec> = None;
    let mut h = History::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks[0] == "semantics" {
            spec = Some(OrderedSetSpec {
                counting: match toks.get(1).copied() {
                    Some("counting") => true,
                    Some("distinct") => false,
                    _ => return Err(err("semantics must be `counting` or `distinct`")),
                },
            });
            continue;
        }
        let int = |i: usize| -> Result<u64, String> {
            toks.get(i)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("expected an integer field"))
        };
        let (thread, invoked, returned) = (int(0)? as usize, int(1)?, int(2)?);
        let op_tok = *toks.get(3).ok_or_else(|| err("missing op"))?;
        let (op, ret_at) = match op_tok {
            "get" => (OrderedSetOp::Get(int(4)?), 5),
            "insert" => (OrderedSetOp::Insert(int(4)?, int(5)?), 6),
            "remove" => (OrderedSetOp::Remove(int(4)?, int(5)?), 6),
            "rangesum" => (OrderedSetOp::RangeSum(int(4)?, int(5)?), 6),
            "winrangesum" => (OrderedSetOp::WindowedRangeSum(int(4)?, int(5)?, int(6)?), 7),
            _ => return Err(err("unknown op (get/insert/remove/rangesum/winrangesum)")),
        };
        if toks.get(ret_at).copied() != Some("ret") {
            return Err(err("expected `ret <value>` after the op"));
        }
        if returned <= invoked {
            return Err(err("response must follow invocation"));
        }
        h.push(Event {
            thread,
            invoked,
            returned,
            op,
            ret: int(ret_at + 1)?,
        });
    }
    let spec = spec.ok_or("missing `semantics counting|distinct` line")?;
    Ok((spec, h))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let events = vec![
            Event {
                thread: 0,
                invoked: 0,
                returned: 3,
                op: OrderedSetOp::Insert(7, 2),
                ret: 2,
            },
            Event {
                thread: 1,
                invoked: 1,
                returned: 2,
                op: OrderedSetOp::RangeSum(0, 9),
                ret: 2,
            },
            Event {
                thread: 2,
                invoked: 4,
                returned: 5,
                op: OrderedSetOp::WindowedRangeSum(0, 9, 4),
                ret: 2,
            },
        ];
        let text = format(true, &events);
        let (spec, h) = parse(&text).unwrap();
        assert!(spec.counting);
        assert_eq!(h.len(), 3);
        assert_eq!(format(spec.counting, h.events()), text);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\
# a comment
semantics distinct

0 0 1 insert 5 1 ret 1   # trailing comment
";
        let (spec, h) = parse(text).unwrap();
        assert!(!spec.counting);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        for bad in [
            "0 0 1 insert 5 1 ret 1",                 // missing semantics
            "semantics maybe",                        // bad semantics
            "semantics counting\n0 0 1 frob 5 ret 1", // unknown op
            "semantics counting\n0 5 1 get 5 ret 1",  // returned <= invoked
            "semantics counting\n0 0 1 get 5 1",      // missing ret keyword
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }
}
