//! Failing-history shrinking: turn a multi-thousand-event refutation
//! into a handful of events a human can replay and reason about.
//!
//! The strategy is greedy delta-debugging (ddmin): repeatedly try
//! deleting chunks of events — halving the chunk size down to single
//! events — and keep any deletion under which the JIT engine still
//! refutes the history. The result is a *fixed point* (no single
//! remaining event can be deleted), not a guaranteed global minimum,
//! which in practice lands real violations well under 15 events.
//!
//! Each candidate re-check runs with a configuration budget: a
//! deletion that makes the verdict too expensive to establish is
//! treated as "not known to preserve the violation" and rejected, so
//! shrinking is safe even around pathological schedules.

use std::hash::Hash;

use crate::jit::{self, JitOutcome};
use crate::{Event, Spec};

/// Configuration budget per candidate re-check. Rejections of small
/// histories exhaust their (memoized) search space in far fewer
/// configurations; the cap only exists to bound adversarial inputs.
const SHRINK_CHECK_BUDGET: usize = 1 << 20;

/// Shrink `events` — which the caller has established the JIT engine
/// refutes — to a smaller sub-history it still refutes. If `events`
/// is in fact linearizable (precondition violated), it is returned
/// unchanged.
pub fn shrink_events<S>(spec: &S, events: Vec<Event<S::Op, S::Ret>>) -> Vec<Event<S::Op, S::Ret>>
where
    S: Spec,
    S::State: Clone + Hash + Eq,
{
    let refuted = |evs: &[Event<S::Op, S::Ret>]| {
        jit::check_events(spec, evs, SHRINK_CHECK_BUDGET) == JitOutcome::Violation
    };
    if !refuted(&events) {
        return events;
    }
    let mut cur = events;
    loop {
        let mut deleted_any = false;
        let mut chunk = (cur.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.len() && cur.len() > 1 {
                let mut cand = Vec::with_capacity(cur.len().saturating_sub(chunk));
                cand.extend_from_slice(&cur[..i]);
                cand.extend_from_slice(&cur[(i + chunk).min(cur.len())..]);
                if refuted(&cand) {
                    cur = cand;
                    deleted_any = true;
                    // Do not advance: the next chunk slid into place.
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        if !deleted_any {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OrderedSetOp, OrderedSetSpec};

    fn ev(op: OrderedSetOp, ret: u64, at: u64) -> Event<OrderedSetOp, u64> {
        Event {
            thread: 0,
            invoked: 2 * at,
            returned: 2 * at + 1,
            op,
            ret,
        }
    }

    #[test]
    fn linearizable_input_comes_back_unchanged() {
        let spec = OrderedSetSpec { counting: true };
        let evs = vec![
            ev(OrderedSetOp::Insert(1, 1), 1, 0),
            ev(OrderedSetOp::Get(1), 1, 1),
        ];
        assert_eq!(shrink_events(&spec, evs.clone()).len(), evs.len());
    }

    #[test]
    fn padding_around_a_stale_read_is_deleted() {
        let spec = OrderedSetSpec { counting: true };
        let mut evs = Vec::new();
        // 200 events of irrelevant-but-valid churn on key 5.
        for i in 0..200u64 {
            if i % 2 == 0 {
                evs.push(ev(OrderedSetOp::Insert(5, 1), 1, i));
            } else {
                evs.push(ev(OrderedSetOp::Remove(5, 1), 1, i));
            }
        }
        // The violation: a get on key 5 seeing a count that never
        // existed, sequenced strictly after all the churn.
        evs.push(ev(OrderedSetOp::Get(5), 77, 500));
        let shrunk = shrink_events(&spec, evs);
        assert!(
            shrunk.len() <= 15,
            "expected a tiny core, got {} events",
            shrunk.len()
        );
        assert_eq!(
            jit::check_events(&spec, &shrunk, usize::MAX),
            JitOutcome::Violation,
            "the core still refutes"
        );
    }
}
