//! Differential testing of the two linearizability backends: on
//! thousands of randomly generated small histories — clean ones built
//! from a simulated execution, plus systematically mutated ones
//! (corrupted and swapped return values, reordered invoke/return
//! timestamps) — the WGL bitmask oracle and the partitioned JIT
//! checker must agree accept/reject on every single one. A
//! disagreement prints the offending history as a replayable fixture
//! literal.
//!
//! Knob: `LLX_LIN_DIFF_CASES` (default 3000, floor 2000) sets how many
//! histories are generated; roughly half are mutated.

use linearize::{check_ordered_set, fixture, Event, History, OrderedSetOp, OrderedSetSpec, Spec};

/// SplitMix64: cheap, deterministic, dependency-free.
fn split(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A clean history: a sequential execution (return values computed by
/// the spec itself) over keys 0..5 with scans, timestamped so that
/// adjacent operations overlap — the sequential order stays a valid
/// witness, so clean histories are linearizable by construction.
fn gen_clean(seed: u64) -> (OrderedSetSpec, History<OrderedSetOp, u64>) {
    let mut rng = seed;
    let spec = OrderedSetSpec {
        counting: split(&mut rng).is_multiple_of(2),
    };
    let n = 2 + split(&mut rng) % 39; // 2..=40 events
    let mut state = spec.initial();
    let mut h = History::new();
    for i in 0..n {
        let r = split(&mut rng);
        let key = r % 5;
        let count = 1 + (r >> 8) % 2;
        let op = match (r >> 16) % 8 {
            0..=2 => OrderedSetOp::Insert(key, count),
            3 | 4 => OrderedSetOp::Remove(key, count),
            5 | 6 => OrderedSetOp::Get(key),
            // Includes lo > hi (the empty range) and cross-key spans.
            _ => OrderedSetOp::RangeSum(key, (r >> 24) % 6),
        };
        let (next, ret) = spec.apply(&state, &op);
        state = next;
        h.push(Event {
            thread: (i % 4) as usize,
            invoked: 4 * i + (r >> 32) % 3,
            returned: 4 * i + 5 + (r >> 40) % 3,
            op,
            ret,
        });
    }
    (spec, h)
}

/// Systematic mutations over a clean history. Each may or may not
/// break linearizability — the point is only that both backends judge
/// the result identically.
fn mutate(h: &History<OrderedSetOp, u64>, rng: &mut u64) -> History<OrderedSetOp, u64> {
    let mut events = h.events().to_vec();
    let n = events.len();
    let pick = |rng: &mut u64| (split(rng) % n as u64) as usize;
    match split(rng) % 4 {
        // Corrupt one return value by a small delta.
        0 => {
            let i = pick(rng);
            events[i].ret = events[i].ret.wrapping_add(1 + split(rng) % 3);
        }
        // Swap the return values of two events.
        1 => {
            let (i, j) = (pick(rng), pick(rng));
            let (ri, rj) = (events[i].ret, events[j].ret);
            events[i].ret = rj;
            events[j].ret = ri;
        }
        // Swap the invoke/return timestamp pairs of two events —
        // reordering them in real time while each stays well-formed.
        2 => {
            let (i, j) = (pick(rng), pick(rng));
            let (ti, tj) = (
                (events[i].invoked, events[i].returned),
                (events[j].invoked, events[j].returned),
            );
            events[i].invoked = tj.0;
            events[i].returned = tj.1;
            events[j].invoked = ti.0;
            events[j].returned = ti.1;
        }
        // Shrink one event's span to a point *after* it originally
        // returned — sequencing it later than its neighbors.
        _ => {
            let i = pick(rng);
            events[i].invoked = events[i].returned + 1 + split(rng) % 8;
            events[i].returned = events[i].invoked + 1;
        }
    }
    let mut out = History::new();
    for e in events {
        out.push(e);
    }
    out
}

fn cases() -> u64 {
    std::env::var("LLX_LIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000)
        .max(2000)
}

#[test]
fn wgl_and_jit_agree_on_generated_histories() {
    let cases = cases();
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for seed in 0..cases {
        let (spec, clean) = gen_clean(seed);
        let mut rng = seed.wrapping_mul(0xA24BAED4963EE407);
        let h = if seed % 2 == 0 {
            clean
        } else {
            mutate(&clean, &mut rng)
        };
        let wgl = h.check(&spec);
        let jit = check_ordered_set(&h, &spec).is_ok();
        assert_eq!(
            wgl,
            jit,
            "checker disagreement on seed {seed} (WGL {}, JIT {}):\n{}",
            wgl,
            jit,
            fixture::format(spec.counting, h.events())
        );
        if wgl {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    // The sweep must exercise both verdicts, or agreement is vacuous.
    assert!(
        accepted > cases / 4 && rejected > cases / 20,
        "degenerate sweep: {accepted} accepted, {rejected} rejected of {cases}"
    );
    println!("differential: {cases} histories, {accepted} accepted, {rejected} rejected, 0 disagreements");
}

#[test]
fn clean_histories_are_linearizable_by_construction() {
    for seed in 0..200 {
        let (spec, h) = gen_clean(seed);
        assert!(
            h.check(&spec),
            "clean history {seed} rejected:\n{}",
            fixture::format(spec.counting, h.events())
        );
    }
}
