//! The committed bad-history corpus: every fixture under
//! `tests/corpus/` is a hand-written **non-linearizable** history with
//! a comment naming the violated law. Both backends must reject every
//! entry — a regression suite for the checker itself — and the
//! shrinker must find a still-refuted core no larger than the fixture.

use std::path::PathBuf;

use linearize::{check_ordered_set, check_ordered_set_with, fixture, shrink_events, CheckerKind};

fn corpus() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "hist"))
        .map(|p| {
            (
                p.file_stem().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).unwrap(),
            )
        })
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 5,
        "corpus shrank: only {} fixtures found",
        entries.len()
    );
    entries
}

#[test]
fn every_corpus_history_is_rejected_by_both_backends() {
    for (name, text) in corpus() {
        let (spec, h) = fixture::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !h.check(&spec),
            "{name}: the WGL oracle accepted a corpus bad history"
        );
        assert!(
            !h.check_jit(&spec),
            "{name}: the whole-history JIT backend accepted a corpus bad history"
        );
        assert!(
            check_ordered_set(&h, &spec).is_err(),
            "{name}: the partitioned JIT checker accepted a corpus bad history"
        );
        for kind in [CheckerKind::Wgl, CheckerKind::Jit, CheckerKind::Both] {
            assert!(
                check_ordered_set_with(&h, &spec, kind).is_err(),
                "{name}: {kind:?} accepted a corpus bad history"
            );
        }
    }
}

#[test]
fn shrinker_finds_a_refuted_core_in_every_corpus_entry() {
    for (name, text) in corpus() {
        let (spec, h) = fixture::parse(&text).unwrap();
        let core = shrink_events(&spec, h.events().to_vec());
        assert!(
            !core.is_empty() && core.len() <= h.len(),
            "{name}: shrinker produced {} events from {}",
            core.len(),
            h.len()
        );
        // The core is itself a valid, still-rejected fixture — the
        // format round-trips, so a failure report is replayable.
        let printed = fixture::format(spec.counting, &core);
        let (spec2, h2) = fixture::parse(&printed).unwrap();
        assert!(
            check_ordered_set(&h2, &spec2).is_err(),
            "{name}: shrunken core is no longer rejected:\n{printed}"
        );
    }
}

#[test]
fn violation_reports_embed_the_minimized_fixture() {
    let (spec, h) = fixture::parse(
        &std::fs::read_to_string(
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/stale_read.hist"),
        )
        .unwrap(),
    )
    .unwrap();
    let v = check_ordered_set(&h, &spec).unwrap_err();
    let report = v.to_string();
    assert!(
        report.contains("semantics counting") && report.contains("minimized"),
        "report should carry a replayable fixture, got:\n{report}"
    );
}
