//! Partitioner edge cases: histories where per-key decomposition buys
//! nothing (one key, or scans coupling every key) must still be
//! checked correctly, and degenerate groups (empty history,
//! single-event groups) must behave.

use linearize::{
    check_ordered_set, partition_ordered_set, Event, History, OrderedSetOp, OrderedSetSpec,
};

fn ev(op: OrderedSetOp, ret: u64, at: u64) -> Event<OrderedSetOp, u64> {
    Event {
        thread: (at % 3) as usize,
        invoked: 2 * at,
        returned: 2 * at + 1,
        op,
        ret,
    }
}

#[test]
fn all_one_key_history_is_one_group_and_still_checked() {
    let spec = OrderedSetSpec { counting: true };
    let mut h = History::new();
    // 600 events, all on key 3 — no parallelism win to be had.
    let mut count = 0u64;
    for i in 0..600u64 {
        match i % 3 {
            0 => {
                count += 1;
                h.push(ev(OrderedSetOp::Insert(3, 1), 1, i));
            }
            1 => h.push(ev(OrderedSetOp::Get(3), count, i)),
            _ => {
                count -= 1;
                h.push(ev(OrderedSetOp::Remove(3, 1), 1, i));
            }
        }
    }
    assert_eq!(partition_ordered_set(h.events()).len(), 1);
    check_ordered_set(&h, &spec).expect("valid single-key history accepted");
    // Same shape with one stale read is rejected, and the report
    // shrinks within the group.
    h.push(ev(OrderedSetOp::Get(3), 999, 1000));
    let v = check_ordered_set(&h, &spec).unwrap_err();
    assert!(
        v.minimized.len() <= 15,
        "minimized to {}",
        v.minimized.len()
    );
}

#[test]
fn scan_heavy_history_degenerates_to_one_group() {
    let spec = OrderedSetSpec { counting: true };
    let mut h = History::new();
    let keys = [1u64, 20, 300, 4000];
    let mut sum = 0u64;
    for (i, &k) in keys.iter().enumerate() {
        sum += 1;
        h.push(ev(OrderedSetOp::Insert(k, 1), 1, 2 * i as u64));
        // Every scan spans every key: all groups merge into one.
        h.push(ev(OrderedSetOp::RangeSum(0, 5000), sum, 2 * i as u64 + 1));
    }
    let groups = partition_ordered_set(h.events());
    assert_eq!(groups.len(), 1, "full-range scans couple every key");
    assert_eq!(groups[0].len(), h.len());
    check_ordered_set(&h, &spec).expect("degenerate single group still checks");
}

#[test]
fn scans_chain_groups_transitively() {
    // Scan A spans keys {1, 5}, scan B spans {5, 9}: key 5 chains all
    // three point keys and both scans into one group.
    let events = vec![
        ev(OrderedSetOp::Insert(1, 1), 1, 0),
        ev(OrderedSetOp::Insert(5, 1), 1, 1),
        ev(OrderedSetOp::Insert(9, 1), 1, 2),
        ev(OrderedSetOp::RangeSum(1, 5), 2, 3),
        ev(OrderedSetOp::RangeSum(5, 9), 2, 4),
    ];
    assert_eq!(partition_ordered_set(&events).len(), 1);
    // Disjoint scans do not chain.
    let events = vec![
        ev(OrderedSetOp::Insert(1, 1), 1, 0),
        ev(OrderedSetOp::Insert(9, 1), 1, 1),
        ev(OrderedSetOp::RangeSum(0, 2), 1, 2),
        ev(OrderedSetOp::RangeSum(8, 10), 1, 3),
    ];
    assert_eq!(partition_ordered_set(&events).len(), 2);
}

#[test]
fn empty_history_has_no_groups_and_is_linearizable() {
    let h: History<OrderedSetOp, u64> = History::new();
    assert!(partition_ordered_set(h.events()).is_empty());
    check_ordered_set(&h, &OrderedSetSpec { counting: true }).expect("empty is linearizable");
}

#[test]
fn single_event_groups_are_judged_alone() {
    let spec = OrderedSetSpec { counting: true };
    // A scan over a region no point op ever touches is a singleton
    // group; it must still be *checked* — its sum can only be 0.
    let mut h = History::new();
    h.push(ev(OrderedSetOp::Insert(1, 1), 1, 0));
    h.push(ev(OrderedSetOp::RangeSum(100, 200), 0, 1));
    assert_eq!(partition_ordered_set(h.events()).len(), 2);
    check_ordered_set(&h, &spec).expect("zero-sum scan over untouched region");

    let mut h = History::new();
    h.push(ev(OrderedSetOp::RangeSum(100, 200), 7, 0));
    let v = check_ordered_set(&h, &spec).unwrap_err();
    assert_eq!(
        v.events.len(),
        1,
        "the singleton scan itself is the violation"
    );

    // The empty interval (lo > hi) is its own singleton too.
    let mut h = History::new();
    h.push(ev(OrderedSetOp::Insert(1, 1), 1, 0));
    h.push(ev(OrderedSetOp::RangeSum(5, 2), 0, 1));
    check_ordered_set(&h, &spec).expect("empty interval sums to zero");
}
