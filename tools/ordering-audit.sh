#!/usr/bin/env bash
# Ordering-discipline audit (ci.sh stage `audit`).
#
# Inventories every `SeqCst`/`Relaxed` memory-ordering use under crates/
# and fails if any site lacks a same-line `// ord:` justification comment
# or an allowlist entry (ci/ordering-allowlist.txt, path-prefix per line).
#
# Rationale: the paper's proofs assume sequential consistency, and the
# repo's discipline is "SeqCst until a proof says otherwise, Relaxed only
# for counters with no synchronization role" — this audit makes every
# departure from acquire/release carry its reason in the source, so a
# future relaxation pass can review them mechanically (and the model
# checker's happens-before warnings can be cross-referenced by site).
#
# Exempt without annotation:
#   * `use` imports (they name an ordering, they don't perform an access)
#   * comment/doc lines
#
# The justification may sit on the same line, on a standalone comment line
# directly above, or on the line directly below (rustfmt moves trailing
# comments there on block-opening lines).
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=ci/ordering-allowlist.txt
[ -f "$allowlist" ] || { echo "missing $allowlist" >&2; exit 2; }

total=0
unannotated=0
violations=""

while IFS= read -r hit; do
    file=${hit%%:*}
    rest=${hit#*:}
    line=${rest%%:*}
    text=${rest#*:}

    allowed=
    while IFS= read -r pat; do
        [ -z "$pat" ] && continue
        case "$pat" in '#'*) continue ;; esac
        # shellcheck disable=SC2254  # unquoted on purpose: allowlist entries are globs
        case "$file" in $pat*) allowed=1; break ;; esac
    done < "$allowlist"
    [ -n "$allowed" ] && continue

    # Strip leading whitespace for classification.
    trimmed="${text#"${text%%[![:space:]]*}"}"
    case "$trimmed" in
        use\ *) continue ;;          # import, not an access
        //*) continue ;;             # comment or doc line
        \**) continue ;;             # block-comment body
    esac

    total=$((total + 1))
    case "$text" in
        *'// ord:'*) continue ;;
    esac
    # rustfmt relocates trailing comments on block-opening lines to the
    # first line inside the block — accept the annotation there, or on a
    # standalone comment line directly above the access.
    near=$(sed -n "$((line > 1 ? line - 1 : 1))p;$((line + 1))p" "$file")
    case "$near" in
        *'// ord:'*) continue ;;
    esac
    unannotated=$((unannotated + 1))
    violations="${violations}${file}:${line}: ${trimmed}
"
done < <(grep -rn --include='*.rs' -E '\b(SeqCst|Relaxed)\b' crates | LC_ALL=C sort)

echo "ordering audit: $total annotated-or-annotatable SeqCst/Relaxed sites, $unannotated unannotated"
if [ "$unannotated" -gt 0 ]; then
    printf '%s' "$violations"
    echo "ordering audit FAILED: annotate each site with '// ord: <reason>' or allowlist the path in $allowlist" >&2
    exit 1
fi
