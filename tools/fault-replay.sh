#!/usr/bin/env bash
# Replay one failing chaos seed, bit-for-bit.
#
#   tools/fault-replay.sh SEED [extra env...]
#
# `bench-harness chaos` prints the seed of a failing run; fault
# decisions are a pure function of (spec, seed, per-point hit index),
# so re-running that single seed reproduces the same injection
# schedule. Seeds print in hex (0xfa17) but decimal works too.
#
# Environment passes straight through, so the failing configuration can
# be pinned exactly, e.g.:
#
#   LLX_FAULT_SPEC='net.conn.drop=prob:0.01' LLX_CHAOS_OPS=5000 \
#       tools/fault-replay.sh 0xfa19
#
# A debug binary (slower, but with the generation-stamp ABA detectors
# and reclamation ledgers compiled in) replays with:
#
#   LLX_REPLAY_PROFILE=debug tools/fault-replay.sh 0xfa19
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:?usage: tools/fault-replay.sh SEED [env LLX_FAULT_SPEC=... etc]}"
# Accept 0x-hex (as printed by the chaos table) or decimal.
SEED=$(( SEED ))

PROFILE="${LLX_REPLAY_PROFILE:-release}"
if [[ "$PROFILE" == release ]]; then
    cargo build -q --release -p bench-harness
    BIN=target/release/bench-harness
else
    cargo build -q -p bench-harness
    BIN=target/debug/bench-harness
fi

echo "replaying chaos seed $SEED (single run, $PROFILE profile)"
LLX_FAULT_SEED="$SEED" LLX_CHAOS_RUNS=1 exec "$BIN" chaos
