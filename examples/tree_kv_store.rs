//! A concurrent key-value store on the chromatic tree (§6).
//!
//! Simulates a session store: writer threads create and expire sessions
//! while reader threads look sessions up, all wait-free of locks. After
//! the workload quiesces, the example validates the red-black balance
//! bound that the chromatic tree restores via its LLX/SCX rebalancing
//! transformations.
//!
//! Run with `cargo run --release --example tree_kv_store`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use trees::ChromaticTree;

#[derive(Clone, Debug, PartialEq)]
struct Session {
    user: u64,
    expiry: u64,
}

fn main() {
    let store: Arc<ChromaticTree<u64, Session>> = Arc::new(ChromaticTree::new());
    let stop = Arc::new(AtomicBool::new(false));
    let created = Arc::new(AtomicU64::new(0));
    let expired = Arc::new(AtomicU64::new(0));
    let lookups = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // Two writers: create sessions with increasing ids, expire old ones.
    for w in 0..2u64 {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let created = Arc::clone(&created);
        let expired = Arc::clone(&expired);
        handles.push(std::thread::spawn(move || {
            let mut next = w; // writer-disjoint id spaces (even/odd)
            while !stop.load(Ordering::Relaxed) {
                let id = next;
                next += 2;
                if store.insert(
                    id,
                    Session {
                        user: id * 7,
                        expiry: id + 100,
                    },
                ) {
                    created.fetch_add(1, Ordering::Relaxed);
                }
                // Expire a session from the tail of our id space.
                if id >= 50 && store.remove(id - 50).is_some() {
                    expired.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    // Two readers.
    for r in 0..2u64 {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let lookups = Arc::clone(&lookups);
        handles.push(std::thread::spawn(move || {
            let mut probe = r;
            while !stop.load(Ordering::Relaxed) {
                probe = probe.wrapping_mul(6364136223846793005).wrapping_add(1);
                if let Some(s) = store.get(probe % 2048) {
                    assert_eq!(s.user, (probe % 2048) * 7, "values never tear");
                }
                lookups.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    let live = store.len();
    println!(
        "created {} sessions, expired {}, {} lookups; {} live",
        created.load(Ordering::Relaxed),
        expired.load(Ordering::Relaxed),
        lookups.load(Ordering::Relaxed),
        live
    );
    assert_eq!(
        live as u64,
        created.load(Ordering::Relaxed) - expired.load(Ordering::Relaxed)
    );

    store.check_invariants().expect("structure intact");
    store.check_balanced().expect("balanced after quiescence");
    let h = store.height();
    let n = live as f64;
    println!(
        "height {} for {} keys (red-black bound ~ {:.0})",
        h,
        live,
        2.0 * (n + 1.0).log2() + 2.0
    );
}
