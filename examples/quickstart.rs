//! Quickstart: the three layers of the repository in one file.
//!
//! 1. the raw LLX/SCX primitives (`llx-scx`),
//! 2. the paper's multiset (`multiset`, §5),
//! 3. the §6 trees (`trees`).
//!
//! Run with `cargo run --example quickstart`.

use llx_scx::{Domain, FieldId, LlxResult, ScxRequest};
use multiset::Multiset;
use trees::ChromaticTree;

fn main() {
    // --- Layer 1: primitives -------------------------------------------
    // A Data-record with one mutable field and a &str immutable payload.
    let domain: Domain<1, &str> = Domain::new();
    let guard = llx_scx::pin();
    let rec = domain.alloc("my-record", [10]);
    let rec_ref = unsafe { &*rec };

    // LLX takes an atomic snapshot of the mutable fields.
    let snap = match domain.llx(rec_ref, &guard) {
        LlxResult::Snapshot(s) => s,
        _ => unreachable!("no contention here"),
    };
    println!(
        "LLX snapshot of {:?}: {:?}",
        rec_ref.immutable(),
        snap.values()
    );

    // VLX revalidates it for free (k reads).
    assert!(domain.vlx(&[snap]));

    // SCX atomically writes one field, conditional on the snapshot.
    let ok = domain.scx(ScxRequest::new(&[snap], FieldId::new(0, 0), 11), &guard);
    println!("SCX succeeded: {ok}; field is now {}", rec_ref.read(0));
    unsafe { domain.retire(rec, &guard) };
    drop(guard);

    // --- Layer 2: the paper's multiset (§5) -----------------------------
    let set = Multiset::new();
    set.insert("apple", 3);
    set.insert("pear", 1);
    set.remove("apple", 2);
    println!("multiset contents: {set:?}");
    assert_eq!(set.get("apple"), 1);

    // --- Layer 3: the §6 chromatic tree ---------------------------------
    let tree: ChromaticTree<u64, &str> = ChromaticTree::new();
    for (k, v) in [(3, "three"), (1, "one"), (2, "two")] {
        tree.insert(k, v);
    }
    println!("tree contents:     {tree:?}");
    tree.check_balanced().expect("balanced after quiescence");
    println!("tree height:       {} (balanced)", tree.height());
}
