//! Concurrent word counting with the paper's multiset (§5).
//!
//! The multiset ADT (`Insert(key, count)` / `Get(key)` / `Delete(key,
//! count)`) is exactly a concurrent counting structure: many threads
//! tally occurrences, readers query counts while tallying is in flight.
//! This example shards a corpus across threads, counts words
//! concurrently, then removes stop words with exact multiplicities.
//!
//! Run with `cargo run --example multiset_wordcount`.

use std::sync::Arc;

use multiset::Multiset;

const CORPUS: &str = "the quick brown fox jumps over the lazy dog \
                      the dog barks and the fox runs over the hill \
                      a quick brown dog and a lazy fox meet the dog";

/// Stable tiny hash so words map to u64 keys (a real application would
/// intern strings; the multiset key type only needs `Copy + Ord`).
fn key_of(word: &str) -> u64 {
    word.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

fn main() {
    let words: Vec<&'static str> = CORPUS.split_whitespace().collect();
    let set: Arc<Multiset<u64>> = Arc::new(Multiset::new());

    // Shard the corpus across 4 tally threads.
    let chunks: Vec<Vec<&'static str>> = words
        .chunks(words.len().div_ceil(4))
        .map(|c| c.to_vec())
        .collect();
    let mut handles = Vec::new();
    for chunk in chunks {
        let set = Arc::clone(&set);
        handles.push(std::thread::spawn(move || {
            for w in chunk {
                set.insert(key_of(w), 1);
            }
        }));
    }
    // A concurrent reader polls the count of "the" while tallying runs.
    {
        let set = Arc::clone(&set);
        handles.push(std::thread::spawn(move || {
            let k = key_of("the");
            let mut last = 0;
            while last < 5 {
                let now = set.get(k);
                assert!(now >= last, "counts are monotone during tallying");
                last = now;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let mut uniq: Vec<&str> = words.clone();
    uniq.sort_unstable();
    uniq.dedup();
    println!("word counts:");
    for w in &uniq {
        println!("  {:>6} x {}", set.get(key_of(w)), w);
    }
    assert_eq!(set.len(), words.len() as u64);

    // Remove stop words with exact multiplicities (Delete fails, without
    // changing anything, if fewer occurrences are present — §5).
    for stop in ["the", "a", "and"] {
        let k = key_of(stop);
        let n = set.get(k);
        if n > 0 {
            assert!(set.remove(k, n));
        }
        assert!(!set.remove(k, 1), "all occurrences removed");
    }
    println!(
        "total words after stop-word removal: {} (of {})",
        set.len(),
        words.len()
    );
    set.check_invariants().expect("list invariants hold");
}
