//! Atomic multi-key reads and mini-transactions.
//!
//! Two facilities built on VLX (paper §3):
//!
//! * `Multiset::get_many` — counts of several keys that all held at one
//!   linearization point (an LLX per deciding node + one VLX);
//! * `llx_scx::Tx` — the §2 "restricted transaction" shape: any number
//!   of snapshot reads, then one write plus finalizations.
//!
//! The demo models an inventory with a conservation law (total stock of
//! 100 units across three warehouses, moved by two-step transfers) and
//! shows that `get_many` never observes impossible totals while naive
//! per-key reads do.
//!
//! Run with `cargo run --release --example atomic_snapshot`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use llx_scx::{Domain, FieldId, Tx};
use multiset::Multiset;

fn main() {
    // ---- Part 1: atomic multi-key reads on the multiset --------------
    let inventory: Arc<Multiset<u64>> = Arc::new(Multiset::new());
    let warehouses = [10u64, 20, 30];
    for &w in &warehouses {
        inventory.insert(w, 100);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let impossible_naive = Arc::new(AtomicU64::new(0));
    let impossible_atomic = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // Mover: transfers stock between warehouses (debit, then credit —
    // reachable totals are 300 and 299, never 301).
    {
        let inv = Arc::clone(&inventory);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let from = warehouses[i % 3];
                let to = warehouses[(i + 1) % 3];
                if inv.remove(from, 1) {
                    inv.insert(to, 1);
                }
                i += 1;
            }
        }));
    }
    // Auditor: compares naive reads against the atomic snapshot.
    {
        let inv = Arc::clone(&inventory);
        let stop = Arc::clone(&stop);
        let naive = Arc::clone(&impossible_naive);
        let atomic = Arc::clone(&impossible_atomic);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let naive_total: u64 = warehouses.iter().map(|&w| inv.get(w)).sum();
                if naive_total > 300 {
                    naive.fetch_add(1, Ordering::Relaxed);
                }
                let snap = inv.get_many(&warehouses);
                let atomic_total: u64 = snap.iter().sum();
                if atomic_total > 300 {
                    atomic.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "impossible totals observed — naive reads: {}, atomic get_many: {}",
        impossible_naive.load(Ordering::Relaxed),
        impossible_atomic.load(Ordering::Relaxed),
    );
    assert_eq!(impossible_atomic.load(Ordering::Relaxed), 0);

    // ---- Part 2: mini-transactions on raw records ---------------------
    // A two-register "config" whose fields must change together.
    let domain: Domain<1, &str> = Domain::new();
    let guard = llx_scx::pin();
    let version = domain.alloc("version", [1]);
    let payload = domain.alloc("payload", [100]);

    let mut tx = Tx::new(&domain, &guard);
    let v = tx.read(unsafe { &*version }).expect("uncontended");
    let p = tx.read(unsafe { &*payload }).expect("uncontended");
    println!("tx read: version={} payload={}", v[0], p[0]);
    // Commit a payload change conditional on *both* reads: any
    // interleaved change to either record would abort it.
    let committed = tx.commit(FieldId::new(1, 0), p[0] + 1).run();
    println!(
        "tx committed: {committed}; payload is now {}",
        unsafe { &*payload }.read(0)
    );
    assert!(committed);
    unsafe {
        domain.retire(version, &guard);
        domain.retire(payload, &guard);
    }
}
