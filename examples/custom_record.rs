//! Building your own non-blocking structure from the raw primitives:
//! a Treiber-style stack written with LLX/SCX instead of bare CAS.
//!
//! The point of the exercise (paper §1): the designer thinks in terms of
//! *records and snapshots*, not ABA-prone word CAS. Note the one rule
//! the paper's §4.1 imposes and how the stack satisfies it exactly the
//! way the multiset's `Delete` does (Fig. 5(c)): a pop must not swing
//! `head` back to a pointer it held before, so it replaces the successor
//! with a *fresh copy* and finalizes both removed records. The empty
//! stack is a sentinel node rather than a null pointer for the same
//! reason — null would repeat.
//!
//! Run with `cargo run --example custom_record`.

use std::sync::Arc;

use llx_scx::{DataRecord, Domain, FieldId, LlxResult, ScxRequest};

/// Stack cell payload: a value, or the bottom-of-stack sentinel.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cell {
    Bottom,
    Value(u64),
}

/// Stack node: immutable payload, one mutable field (`next`). The
/// bottom sentinel's `next` is unused (null).
type Node = DataRecord<1, Cell>;
const NEXT: usize = 0;

struct Stack {
    domain: Domain<1, Cell>,
    /// Entry point whose single field points at the top node.
    head: *const Node,
}

unsafe impl Send for Stack {}
unsafe impl Sync for Stack {}

impl Stack {
    fn new() -> Self {
        let domain = Domain::new();
        let bottom = domain.alloc(Cell::Bottom, [llx_scx::NULL]);
        let head = domain.alloc(Cell::Bottom, [llx_scx::pack_ptr(bottom)]);
        Stack { domain, head }
    }

    fn push(&self, value: u64) {
        loop {
            let guard = llx_scx::pin();
            let head = unsafe { &*self.head };
            let LlxResult::Snapshot(s) = self.domain.llx(head, &guard) else {
                continue;
            };
            // The new node points at the current top. Fresh allocation
            // keeps the no-ABA contract on the head pointer for free.
            let node = self.domain.alloc(Cell::Value(value), [s.value(NEXT)]);
            if self.domain.scx(
                ScxRequest::new(&[s], FieldId::new(0, NEXT), llx_scx::pack_ptr(node)),
                &guard,
            ) {
                return;
            }
            // SAFETY: never published.
            unsafe { self.domain.dealloc(node) };
        }
    }

    fn pop(&self) -> Option<u64> {
        loop {
            let guard = llx_scx::pin();
            let head = unsafe { &*self.head };
            let LlxResult::Snapshot(sh) = self.domain.llx(head, &guard) else {
                continue;
            };
            let top = unsafe { self.domain.deref(sh.value(NEXT), &guard) };
            let Cell::Value(value) = *top.immutable() else {
                return None; // bottom sentinel: empty stack
            };
            let LlxResult::Snapshot(st) = self.domain.llx(top, &guard) else {
                continue;
            };
            // Fig. 5(c) discipline: head must never revisit an old
            // pointer, so the successor is replaced by a fresh copy and
            // both top and successor are finalized.
            let succ = unsafe { self.domain.deref(st.value(NEXT), &guard) };
            let LlxResult::Snapshot(ss) = self.domain.llx(succ, &guard) else {
                continue;
            };
            let succ_copy = self.domain.alloc(*succ.immutable(), [ss.value(NEXT)]);
            if self.domain.scx(
                ScxRequest::new(
                    &[sh, st, ss],
                    FieldId::new(0, NEXT),
                    llx_scx::pack_ptr(succ_copy),
                )
                .finalize(1)
                .finalize(2),
                &guard,
            ) {
                // SAFETY: both unlinked by the committed SCX.
                unsafe {
                    self.domain.retire(top as *const Node, &guard);
                    self.domain.retire(succ as *const Node, &guard);
                }
                return Some(value);
            }
            // SAFETY: never published.
            unsafe { self.domain.dealloc(succ_copy) };
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: exclusive access during drop.
            let node = unsafe { Box::from_raw(cur as *mut Node) };
            cur = node.read(NEXT) as usize as *const Node;
        }
    }
}

fn main() {
    let stack = Arc::new(Stack::new());

    // Concurrent pushes and pops; each popped value is recorded.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let stack = Arc::clone(&stack);
        handles.push(std::thread::spawn(move || {
            let mut popped = Vec::new();
            for i in 0..10_000u64 {
                stack.push(t * 1_000_000 + i);
                if i % 2 == 0 {
                    if let Some(v) = stack.pop() {
                        popped.push(v);
                    }
                }
            }
            popped
        }));
    }
    let mut seen: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();

    // Drain the remainder.
    while let Some(v) = stack.pop() {
        seen.push(v);
    }
    assert_eq!(stack.pop(), None);

    // Every pushed value was popped exactly once.
    assert_eq!(seen.len(), 4 * 10_000);
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 4 * 10_000, "no duplicates, no losses");
    println!(
        "LLX/SCX stack: {} pushes, all popped exactly once",
        seen.len()
    );
}
